package svcswitch

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/flight"
	"repro/internal/reqtrace"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// Trace is one request's timeline through the switch, for latency
// breakdown analysis. Stages are virtual timestamps:
//
//	Accepted   → the client handed the request to Route
//	Arrived    → the request reached the switch node (client→switch hop)
//	Picked     → switch CPU done, a backend chosen
//	Delivered  → the request reached the backend (switch→backend hop)
//	Completed  → the response was fully delivered to the client
type Trace struct {
	Accepted, Arrived, Picked, Delivered, Completed sim.Time
	// ID is the request's sequence number within this switch, starting
	// at 1. It doubles as the trace ID stamped onto latency-histogram
	// exemplars, so an outlier bucket points back at a concrete request.
	ID uint64
	// Backend is the chosen node's address; empty when dropped.
	Backend string
	// Retries counts backends tried before one accepted.
	Retries int
	// Dropped marks requests that never reached a live backend.
	Dropped bool
}

// SwitchHop returns the client→switch plus routing time.
func (t Trace) SwitchHop() sim.Duration { return t.Delivered.Sub(t.Accepted) }

// ServiceTime returns the backend handling + response time.
func (t Trace) ServiceTime() sim.Duration { return t.Completed.Sub(t.Delivered) }

// Total returns the end-to-end response time.
func (t Trace) Total() sim.Duration { return t.Completed.Sub(t.Accepted) }

// record fills a reqtrace.Record from the timeline. Stage boundaries
// the request never reached (zero timestamps) contribute nothing; the
// remainder of a dropped request's timeline past its last reached
// boundary stays unattributed. For a served request the four stages
// sum exactly to TotalNs. Retried upstream attempts land in
// UpstreamNs: Picked is the first pick, Delivered the successful one.
func (t *Trace) record(rec *reqtrace.Record) {
	*rec = reqtrace.Record{
		ID:      t.ID,
		StartNs: int64(t.Accepted),
		Backend: t.Backend,
		Retries: t.Retries,
		Dropped: t.Dropped,
		TotalNs: int64(t.Completed.Sub(t.Accepted)),
	}
	prev := t.Accepted
	if t.Arrived != 0 {
		rec.QueueNs = int64(t.Arrived.Sub(prev))
		prev = t.Arrived
	}
	if t.Picked != 0 {
		rec.RouteNs = int64(t.Picked.Sub(prev))
		prev = t.Picked
	}
	if t.Delivered != 0 {
		rec.UpstreamNs = int64(t.Delivered.Sub(prev))
		prev = t.Delivered
	}
	if !t.Dropped {
		rec.ServeNs = int64(t.Completed.Sub(prev))
	}
}

// Node is where the switch itself executes — it is "co-located in one of
// the virtual service nodes" (§3.4), so its processing pays that node's
// prices. appsvc's backends satisfy this interface.
type Node interface {
	IP() simnet.IP
	ExecCPU(c cycles.Cycles, onDone func()) bool
	SyscallCost(s cycles.Syscall) cycles.Cycles
	Alive() bool
}

// Handler is the service-side entry point for one backend: it serves a
// request from clientIP and fires onDone when the response has been
// delivered. A false return means the backend is down.
type Handler func(clientIP simnet.IP, onDone func()) bool

// Request is one client request arriving at the switch.
type Request struct {
	// ClientIP receives the response.
	ClientIP simnet.IP
	// Bytes is the request message size.
	Bytes int64
	// Component names the target service component for partitionable
	// services; empty for the paper's fully replicated services.
	Component string
	// OnDone fires when the response is fully delivered.
	OnDone func()
}

// routeView is one component's slice of the cached route table: parallel
// arrays of everything the forwarding hot path needs, precomputed so a
// routed request touches no maps, formats no addresses, and allocates
// nothing. Views handed out by the cache are shared and immutable; the
// retry path copies before shrinking the candidate set.
type routeView struct {
	entries  []BackendEntry
	addrs    []string
	handlers []Handler
	stats    []*Stats
	hists    []*telemetry.Histogram
	health   []*backendHealth
}

// remove deletes candidate i in place (owned views only).
func (v *routeView) remove(i int) {
	n := len(v.entries) - 1
	copy(v.entries[i:], v.entries[i+1:])
	copy(v.addrs[i:], v.addrs[i+1:])
	copy(v.handlers[i:], v.handlers[i+1:])
	copy(v.stats[i:], v.stats[i+1:])
	copy(v.hists[i:], v.hists[i+1:])
	copy(v.health[i:], v.health[i+1:])
	v.entries, v.addrs = v.entries[:n], v.addrs[:n]
	v.handlers, v.stats, v.hists = v.handlers[:n], v.stats[:n], v.hists[:n]
	v.health = v.health[:n]
}

// clone deep-copies the view so it can be mutated.
func (v routeView) clone() routeView {
	return routeView{
		entries:  append([]BackendEntry(nil), v.entries...),
		addrs:    append([]string(nil), v.addrs...),
		handlers: append([]Handler(nil), v.handlers...),
		stats:    append([]*Stats(nil), v.stats...),
		hists:    append([]*telemetry.Histogram(nil), v.hists...),
		health:   append([]*backendHealth(nil), v.health...),
	}
}

// HealthConfig tunes the switch's passive backend health tracking.
// The zero value disables it, keeping the data plane byte-identical to
// the health-unaware switch.
type HealthConfig struct {
	// EjectAfter is the consecutive-failure count that ejects a backend
	// from the rotation; 0 disables health tracking.
	EjectAfter int
	// ProbeAfter is how long an ejected backend sits out before one
	// half-open probe request is allowed through.
	ProbeAfter sim.Duration
}

// backendHealth is one backend's passive health record. It lives in the
// switch's persistent health map (keyed by address), so rebuilding the
// route cache never forgets failure counts.
type backendHealth struct {
	addr     string   // backend address, for ejection diagnostics
	fails    int      // consecutive failures while in rotation
	ejected  bool     // out of the rotation
	probing  bool     // a half-open probe is in flight
	reopenAt sim.Time // when the next probe may be admitted
}

// usable reports whether the backend may receive a request at now:
// either it is in rotation, or it is ejected but due a half-open probe
// and no probe is already in flight.
func (h *backendHealth) usable(now sim.Time) bool {
	return !h.ejected || (!h.probing && now >= h.reopenAt)
}

// inflight is the per-request state machine. Requests draw these from a
// free list on the switch; the four stage callbacks are bound once per
// struct lifetime, so the no-retry routing path performs zero heap
// allocations per request.
type inflight struct {
	s    *Switch
	req  Request
	tr   Trace
	view routeView // current candidate set
	// owned marks the view as a private copy (retry path) that may be
	// mutated; unowned views alias the shared route cache.
	owned bool

	// Chosen backend, set at pick time.
	pick int
	st   *Stats
	hist *telemetry.Histogram
	hp   *backendHealth
	addr string

	statScratch []Stats // policy input buffer, reused

	// rec is the reqtrace scratch record, rebuilt from tr at completion
	// so the Offer argument lives in the pooled op and never escapes.
	rec reqtrace.Record

	onArrive  func() // client→switch hop delivered
	onExec    func() // switch CPU burst done, pick next
	onDeliver func() // switch→backend hop delivered
	onServe   func() // backend finished serving
}

// dropCandidate removes candidate i from the view, copying it first if
// it still aliases the shared cache. Only the retry path lands here, so
// the copy's allocation never taxes healthy traffic.
func (op *inflight) dropCandidate(i int) {
	if !op.owned {
		op.view = op.view.clone()
		op.owned = true
	}
	op.view.remove(i)
}

// Switch accepts client requests and directs each to a backend virtual
// service node. Routing costs are real: the request crosses the LAN to
// the switch's node, the switch spends CPU parsing and forwarding (at its
// node's syscall prices), and the request crosses the LAN again to the
// chosen backend. Responses return directly from the backend to the
// client (direct server return), which keeps switch overhead modest — the
// behaviour Figure 6's scenario comparison shows.
type Switch struct {
	// Config is the service configuration file the Master maintains.
	Config *ConfigFile

	node     Node
	net      *simnet.Network
	policy   Policy
	handlers map[string]Handler
	stats    map[string]*Stats
	cfgSeen  int
	onTrace  func(Trace)

	// Passive backend health (consecutive-error ejection + half-open
	// re-admission). Disabled until SetHealth; records persist across
	// route-cache rebuilds.
	healthCfg HealthConfig
	health    map[string]*backendHealth

	// reqSeq numbers requests; Trace.ID and histogram exemplars use it
	// until SetRequestTracer switches the switch onto the collector's
	// store-wide ID sequence.
	reqSeq uint64

	// rtc is the tail-sampling request collector; nil (untraced) until
	// SetRequestTracer.
	rtc *reqtrace.Collector

	// flog logs control-plane transitions only (ejection, re-admission)
	// — never per-request — so the routing hot path is untouched. Nil
	// (no-op) until SetLogger.
	flog *flight.Logger

	// Route cache: per-component views rebuilt only when the config
	// version or the bind set changes, so the hot path reads parallel
	// slices instead of filtering entries and formatting map keys.
	routes       map[string]*routeView
	cacheVersion int
	cacheBinds   int
	bindSeq      int

	opFree []*inflight

	// Telemetry instruments. The counters always work (they back the
	// Routed/Dropped/Retried accessors); the histograms are live only
	// after Instrument connects the switch to a registry.
	reg        *telemetry.Registry
	routed     *telemetry.Counter
	dropped    *telemetry.Counter
	retried    *telemetry.Counter
	ejectedC   *telemetry.Counter
	readmitted *telemetry.Counter
	latency    *telemetry.Histogram
	backendLat map[string]*telemetry.Histogram
}

// requestHandlingSyscalls is the switch's per-request work: accept, read,
// parse, connect, forward, close.
var requestHandlingSyscalls = []cycles.Syscall{
	cycles.Socket, cycles.Recv, cycles.Getpid, cycles.Socket, cycles.Send, cycles.Close,
}

// New creates a switch for the given service configuration, running on
// node, with the default weighted-round-robin policy.
func New(net *simnet.Network, node Node, config *ConfigFile) *Switch {
	s := &Switch{
		Config:   config,
		node:     node,
		net:      net,
		policy:   NewWeightedRoundRobin(),
		handlers: make(map[string]Handler),
		stats:    make(map[string]*Stats),
		cfgSeen:  config.Version(),
	}
	s.Instrument(nil)
	return s
}

// Instrument connects the switch's counters and latency histograms to a
// registry, labeled by service name. A nil registry (the default) keeps
// the counters working — they back Routed/Dropped/Retried — but disables
// histogram collection, so the routing hot path stays cheap.
func (s *Switch) Instrument(reg *telemetry.Registry) {
	svc := telemetry.L("service", s.Config.ServiceName)
	routed := reg.Counter("soda_switch_routed_total", svc)
	dropped := reg.Counter("soda_switch_dropped_total", svc)
	retried := reg.Counter("soda_switch_retries_total", svc)
	ejected := reg.Counter("soda_switch_ejected_total", svc)
	readmitted := reg.Counter("soda_switch_readmitted_total", svc)
	// Carry forward counts accumulated before instrumentation, so the
	// accessors never regress.
	routed.Add(s.routed.Value())
	dropped.Add(s.dropped.Value())
	retried.Add(s.retried.Value())
	ejected.Add(s.ejectedC.Value())
	readmitted.Add(s.readmitted.Value())
	s.reg = reg
	s.routed, s.dropped, s.retried = routed, dropped, retried
	s.ejectedC, s.readmitted = ejected, readmitted
	s.latency = reg.Histogram("soda_switch_latency_seconds", nil, svc)
	s.backendLat = make(map[string]*telemetry.Histogram)
	s.bindSeq++ // cached views hold stale histograms
}

// SetRequestTracer attaches a tail-sampling request collector. While
// attached, trace IDs come from the collector's store-wide sequence —
// so /traces/{id} resolves unambiguously across services — and latency
// exemplars are stamped only for retained requests, making every
// exposed exemplar point at a resolvable trace. Nil detaches and
// restores the per-switch reqSeq numbering.
func (s *Switch) SetRequestTracer(c *reqtrace.Collector) { s.rtc = c }

// RequestTracer returns the attached collector, nil when untraced.
func (s *Switch) RequestTracer() *reqtrace.Collector { return s.rtc }

// SetLogger routes the switch's backend-health transitions (ejection,
// half-open re-admission) into the flight recorder. Per-request traffic
// is never logged — the hot path stays allocation-free. Nil restores the
// no-op default.
func (s *Switch) SetLogger(l *flight.Logger) { s.flog = l }

// Routed returns how many requests were forwarded to a backend.
func (s *Switch) Routed() int { return int(s.routed.Value()) }

// Dropped returns how many requests could not be served (no live
// backend, ill-behaved policy, dead switch node).
func (s *Switch) Dropped() int { return int(s.dropped.Value()) }

// Retried returns how many backend picks were abandoned for another
// (dead, unbound, or mid-flight-failed backends).
func (s *Switch) Retried() int { return int(s.retried.Value()) }

// LatencyHistogram returns the end-to-end latency histogram, nil when
// the switch is uninstrumented. The SLO evaluator diffs its snapshots
// into per-window distributions.
func (s *Switch) LatencyHistogram() *telemetry.Histogram { return s.latency }

// backendHist returns the per-backend latency histogram, or nil when the
// switch is uninstrumented.
func (s *Switch) backendHist(addr string) *telemetry.Histogram {
	if s.reg == nil {
		return nil
	}
	h, ok := s.backendLat[addr]
	if !ok {
		h = s.reg.Histogram("soda_switch_backend_latency_seconds",
			nil, telemetry.L("service", s.Config.ServiceName), telemetry.L("backend", addr))
		s.backendLat[addr] = h
	}
	return h
}

// IP returns the address clients send requests to.
func (s *Switch) IP() simnet.IP { return s.node.IP() }

// Policy returns the active switching policy.
func (s *Switch) Policy() Policy { return s.policy }

// SetPolicy installs a service-specific policy (the ASP's replacement
// hook, §3.4).
func (s *Switch) SetPolicy(p Policy) {
	if p == nil {
		panic("svcswitch: nil policy")
	}
	s.policy = p
	p.Reset()
}

// SetHealth configures passive backend health tracking. A zero
// EjectAfter disables it and clears all records. Enabling is an RCU-style
// config change: the route cache rebuilds on the next request.
func (s *Switch) SetHealth(cfg HealthConfig) {
	if cfg.EjectAfter < 0 || cfg.ProbeAfter < 0 {
		panic("svcswitch: negative health threshold")
	}
	s.healthCfg = cfg
	if cfg.EjectAfter == 0 {
		s.health = nil
	} else if s.health == nil {
		s.health = make(map[string]*backendHealth)
	}
	s.bindSeq++ // cached views hold stale health refs
}

// Health returns the active health configuration.
func (s *Switch) Health() HealthConfig { return s.healthCfg }

// BackendEjected reports whether passive health currently holds the
// backend address out of the rotation.
func (s *Switch) BackendEjected(addr string) bool {
	h := s.health[addr]
	return h != nil && h.ejected
}

// EjectedTotal returns how many times a backend was ejected.
func (s *Switch) EjectedTotal() int { return int(s.ejectedC.Value()) }

// ReadmittedTotal returns how many times an ejected backend was
// re-admitted after a successful half-open probe.
func (s *Switch) ReadmittedTotal() int { return int(s.readmitted.Value()) }

// Node returns the node the switch executes on.
func (s *Switch) Node() Node { return s.node }

// SetNode re-homes the switch onto a different virtual service node —
// the recovery path when the node hosting the switch dies (§3.4 co-
// location). The Switch pointer stays stable, so client routes and
// accounting hooks keep working across the move.
func (s *Switch) SetNode(n Node) {
	if n == nil {
		panic("svcswitch: nil node")
	}
	s.node = n
}

// OnTrace installs a per-request trace hook, called once per request at
// completion or drop. Nil removes the hook.
func (s *Switch) OnTrace(fn func(Trace)) { s.onTrace = fn }

func (s *Switch) emitTrace(t *Trace) {
	if s.onTrace != nil {
		s.onTrace(*t)
	}
}

// Bind registers the handler for a backend address. The HUP assembly
// binds each virtual service node's service instance after priming.
func (s *Switch) Bind(e BackendEntry, h Handler) {
	s.handlers[e.Addr()] = h
	s.bindSeq++
}

// Unbind removes a backend's handler (tear-down, resizing), along with
// its forwarding statistics and per-backend latency histogram — without
// the eviction, repeated resizing would grow the maps without bound.
func (s *Switch) Unbind(e BackendEntry) {
	addr := e.Addr()
	delete(s.handlers, addr)
	delete(s.stats, addr)
	delete(s.backendLat, addr)
	delete(s.health, addr)
	s.bindSeq++
}

// StatsFor returns the forwarding statistics for a backend address.
func (s *Switch) StatsFor(e BackendEntry) Stats {
	if st := s.stats[e.Addr()]; st != nil {
		return *st
	}
	return Stats{}
}

func (s *Switch) statRefAddr(addr string) *Stats {
	st := s.stats[addr]
	if st == nil {
		st = &Stats{}
		s.stats[addr] = st
	}
	return st
}

// healthRef returns the persistent health record for addr, or nil when
// health tracking is disabled.
func (s *Switch) healthRef(addr string) *backendHealth {
	if s.healthCfg.EjectAfter == 0 {
		return nil
	}
	h := s.health[addr]
	if h == nil {
		h = &backendHealth{addr: addr}
		s.health[addr] = h
	}
	return h
}

// noteFailure records one failed interaction with a backend: a failed
// probe re-arms the ejection window; enough consecutive in-rotation
// failures eject the backend.
func (s *Switch) noteFailure(h *backendHealth) {
	if h == nil {
		return
	}
	now := s.net.Kernel().Now()
	wasProbe := h.probing
	h.probing = false
	if h.ejected {
		if wasProbe {
			h.reopenAt = now.Add(s.healthCfg.ProbeAfter)
		}
		return
	}
	h.fails++
	if h.fails >= s.healthCfg.EjectAfter {
		h.ejected = true
		h.reopenAt = now.Add(s.healthCfg.ProbeAfter)
		s.ejectedC.Inc()
		s.flog.Warn("backend ejected",
			telemetry.L("backend", h.addr),
			telemetry.L("fails", fmt.Sprint(h.fails)))
	}
}

// noteSuccess resets a backend's failure streak; a successful half-open
// probe re-admits it to the rotation.
func (s *Switch) noteSuccess(h *backendHealth) {
	if h == nil {
		return
	}
	h.fails = 0
	h.probing = false
	if h.ejected {
		h.ejected = false
		s.readmitted.Inc()
		s.flog.Info("backend readmitted", telemetry.L("backend", h.addr))
	}
}

// routesFor returns the cached route view for a component, rebuilding
// the cache when the config version or bind set changed. A nil return
// means no backends serve the component.
func (s *Switch) routesFor(component string) *routeView {
	version := s.Config.Version()
	if s.routes == nil || version != s.cacheVersion || s.bindSeq != s.cacheBinds {
		s.rebuildRoutes(version)
	}
	return s.routes[component]
}

// rebuildRoutes recomputes every component's parallel-array view. Runs
// only on config/bind/instrument changes, never per request.
func (s *Switch) rebuildRoutes(version int) {
	s.routes = make(map[string]*routeView)
	_, entries := s.Config.Snapshot()
	for _, e := range entries {
		v := s.routes[e.Component]
		if v == nil {
			v = &routeView{}
			s.routes[e.Component] = v
		}
		addr := e.Addr()
		v.entries = append(v.entries, e)
		v.addrs = append(v.addrs, addr)
		v.handlers = append(v.handlers, s.handlers[addr])
		v.stats = append(v.stats, s.statRefAddr(addr))
		v.hists = append(v.hists, s.backendHist(addr))
		v.health = append(v.health, s.healthRef(addr))
	}
	s.cacheVersion = version
	s.cacheBinds = s.bindSeq
}

// getOp draws an inflight op from the free list, binding its stage
// callbacks on first construction only.
func (s *Switch) getOp() *inflight {
	if n := len(s.opFree); n > 0 {
		op := s.opFree[n-1]
		s.opFree[n-1] = nil
		s.opFree = s.opFree[:n-1]
		return op
	}
	op := &inflight{s: s}
	op.onArrive = func() {
		op.tr.Arrived = op.s.net.Kernel().Now()
		op.s.dispatch(op)
	}
	op.onExec = func() {
		op.tr.Picked = op.s.net.Kernel().Now()
		if v := op.s.routesFor(op.req.Component); v != nil {
			op.view = *v
		}
		op.s.forward(op)
	}
	op.onDeliver = func() { op.s.deliver(op) }
	op.onServe = func() { op.s.serve(op) }
	return op
}

// putOp returns an op to the free list. Callbacks copy what they need
// before releasing: the op is reusable immediately afterwards.
func (s *Switch) putOp(op *inflight) {
	op.req, op.tr, op.view = Request{}, Trace{}, routeView{}
	op.owned = false
	op.pick, op.st, op.hist, op.hp, op.addr = 0, nil, nil, nil, ""
	s.opFree = append(s.opFree, op)
}

// Route accepts one request: LAN hop to the switch, switch CPU, policy
// pick, LAN hop to the backend, service handling. Dead backends are
// skipped (the policy is re-consulted against the remaining set); if no
// live backend remains, the request is dropped.
func (s *Switch) Route(req Request) error {
	op := s.getOp()
	op.req = req
	s.reqSeq++
	if s.rtc != nil {
		op.tr.ID = s.rtc.NextID()
	} else {
		op.tr.ID = s.reqSeq
	}
	op.tr.Accepted = s.net.Kernel().Now()
	if !s.node.Alive() {
		s.drop(op)
		return fmt.Errorf("svcswitch: switch node %s is down", s.node.IP())
	}
	if version := s.Config.Version(); version != s.cfgSeen {
		s.policy.Reset()
		s.cfgSeen = version
	}
	// Client → switch.
	if err := s.net.Transfer(req.ClientIP, s.node.IP(), req.Bytes, op.onArrive); err != nil {
		s.drop(op)
		return err
	}
	return nil
}

// drop records a failed request and retires its op.
func (s *Switch) drop(op *inflight) {
	s.dropped.Inc()
	if op.tr.Retries > 0 {
		s.retried.Add(int64(op.tr.Retries))
	}
	op.tr.Dropped = true
	op.tr.Completed = s.net.Kernel().Now()
	if s.rtc != nil {
		op.tr.record(&op.rec)
		s.rtc.Offer(&op.rec)
	}
	s.emitTrace(&op.tr)
	s.putOp(op)
}

// dispatch runs at the switch node after the request arrives.
func (s *Switch) dispatch(op *inflight) {
	var cost cycles.Cycles
	for _, sc := range requestHandlingSyscalls {
		cost += s.node.SyscallCost(sc)
	}
	if !s.node.ExecCPU(cost, op.onExec) {
		s.drop(op)
	}
}

// applyHealth removes ejected backends from the candidate view before
// the policy runs. If no candidate is usable the view is left intact
// (fail open): routing to a possibly-dead backend beats certainly
// dropping the request.
func (s *Switch) applyHealth(op *inflight) {
	hs := op.view.health
	if len(hs) == 0 || s.healthCfg.EjectAfter == 0 {
		return
	}
	now := s.net.Kernel().Now()
	usable := 0
	for i, h := range hs {
		if op.view.handlers[i] == nil {
			continue
		}
		if h == nil || h.usable(now) {
			usable++
		}
	}
	if usable == 0 {
		return
	}
	for i := len(op.view.entries) - 1; i >= 0; i-- {
		if h := op.view.health[i]; h != nil && !h.usable(now) {
			op.dropCandidate(i)
		}
	}
}

// forward picks a backend from the op's candidate view and hands the
// request over, retrying with the remaining candidates if the pick is
// dead, unbound, or dies while the forward is in flight.
func (s *Switch) forward(op *inflight) {
	s.applyHealth(op)
	for n := len(op.view.entries); n > 0; n = len(op.view.entries) {
		if cap(op.statScratch) < n {
			op.statScratch = make([]Stats, n)
		}
		stats := op.statScratch[:n]
		for i, st := range op.view.stats {
			stats[i] = *st
		}
		idx, err := s.policy.Pick(op.view.entries, stats)
		if err != nil || idx < 0 || idx >= n {
			// Ill-behaved service-specific policy: this request fails;
			// nothing outside this service is touched (§5).
			s.drop(op)
			return
		}
		if op.view.handlers[idx] == nil {
			op.tr.Retries++
			op.dropCandidate(idx)
			continue
		}
		op.pick = idx
		op.st = op.view.stats[idx]
		op.hist = op.view.hists[idx]
		op.hp = op.view.health[idx]
		op.addr = op.view.addrs[idx]
		if op.hp != nil && op.hp.ejected {
			op.hp.probing = true // this request is the half-open probe
		}
		op.st.Active++
		// Switch → backend, then service handling.
		if err := s.net.Transfer(s.node.IP(), op.view.entries[idx].IP, op.req.Bytes, op.onDeliver); err != nil {
			op.st.Active--
			s.noteFailure(op.hp)
			op.tr.Retries++
			op.dropCandidate(idx)
			continue
		}
		return
	}
	s.drop(op)
}

// deliver runs when the request reaches the chosen backend: hand it to
// the service handler, or retry the survivors if the backend died while
// the forward was in flight.
func (s *Switch) deliver(op *inflight) {
	op.tr.Delivered = s.net.Kernel().Now()
	op.tr.Backend = op.addr
	if op.view.handlers[op.pick](op.req.ClientIP, op.onServe) {
		op.st.Forwarded++
		s.routed.Inc()
		return
	}
	// Backend died after the forward: retry the survivors.
	op.st.Active--
	s.noteFailure(op.hp)
	op.tr.Retries++
	op.dropCandidate(op.pick)
	s.forward(op)
}

// serve runs when the backend has delivered the response to the client.
func (s *Switch) serve(op *inflight) {
	op.st.Active--
	s.noteSuccess(op.hp)
	op.tr.Completed = s.net.Kernel().Now()
	exID := op.tr.ID
	if s.rtc != nil {
		op.tr.record(&op.rec)
		if !s.rtc.Offer(&op.rec) {
			exID = 0 // unretained: leave no dangling exemplar
		}
	}
	s.latency.ObserveTraced(op.tr.Total().Seconds(), exID)
	op.hist.ObserveTraced(op.tr.ServiceTime().Seconds(), exID)
	if op.tr.Retries > 0 {
		s.retried.Add(int64(op.tr.Retries))
	}
	s.emitTrace(&op.tr)
	onDone := op.req.OnDone
	s.putOp(op)
	if onDone != nil {
		onDone()
	}
}
