package svcswitch

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// Trace is one request's timeline through the switch, for latency
// breakdown analysis. Stages are virtual timestamps:
//
//	Accepted   → the client handed the request to Route
//	Arrived    → the request reached the switch node (client→switch hop)
//	Picked     → switch CPU done, a backend chosen
//	Delivered  → the request reached the backend (switch→backend hop)
//	Completed  → the response was fully delivered to the client
type Trace struct {
	Accepted, Arrived, Picked, Delivered, Completed sim.Time
	// Backend is the chosen node's address; empty when dropped.
	Backend string
	// Retries counts backends tried before one accepted.
	Retries int
	// Dropped marks requests that never reached a live backend.
	Dropped bool
}

// SwitchHop returns the client→switch plus routing time.
func (t Trace) SwitchHop() sim.Duration { return t.Delivered.Sub(t.Accepted) }

// ServiceTime returns the backend handling + response time.
func (t Trace) ServiceTime() sim.Duration { return t.Completed.Sub(t.Delivered) }

// Total returns the end-to-end response time.
func (t Trace) Total() sim.Duration { return t.Completed.Sub(t.Accepted) }

// Node is where the switch itself executes — it is "co-located in one of
// the virtual service nodes" (§3.4), so its processing pays that node's
// prices. appsvc's backends satisfy this interface.
type Node interface {
	IP() simnet.IP
	ExecCPU(c cycles.Cycles, onDone func()) bool
	SyscallCost(s cycles.Syscall) cycles.Cycles
	Alive() bool
}

// Handler is the service-side entry point for one backend: it serves a
// request from clientIP and fires onDone when the response has been
// delivered. A false return means the backend is down.
type Handler func(clientIP simnet.IP, onDone func()) bool

// Request is one client request arriving at the switch.
type Request struct {
	// ClientIP receives the response.
	ClientIP simnet.IP
	// Bytes is the request message size.
	Bytes int64
	// Component names the target service component for partitionable
	// services; empty for the paper's fully replicated services.
	Component string
	// OnDone fires when the response is fully delivered.
	OnDone func()
}

// Switch accepts client requests and directs each to a backend virtual
// service node. Routing costs are real: the request crosses the LAN to
// the switch's node, the switch spends CPU parsing and forwarding (at its
// node's syscall prices), and the request crosses the LAN again to the
// chosen backend. Responses return directly from the backend to the
// client (direct server return), which keeps switch overhead modest — the
// behaviour Figure 6's scenario comparison shows.
type Switch struct {
	// Config is the service configuration file the Master maintains.
	Config *ConfigFile

	node     Node
	net      *simnet.Network
	policy   Policy
	handlers map[string]Handler
	stats    map[string]*Stats
	cfgSeen  int
	onTrace  func(Trace)

	// Telemetry instruments. The counters always work (they back the
	// Routed/Dropped/Retried accessors); the histograms are live only
	// after Instrument connects the switch to a registry.
	reg        *telemetry.Registry
	routed     *telemetry.Counter
	dropped    *telemetry.Counter
	retried    *telemetry.Counter
	latency    *telemetry.Histogram
	backendLat map[string]*telemetry.Histogram
}

// requestHandlingSyscalls is the switch's per-request work: accept, read,
// parse, connect, forward, close.
var requestHandlingSyscalls = []cycles.Syscall{
	cycles.Socket, cycles.Recv, cycles.Getpid, cycles.Socket, cycles.Send, cycles.Close,
}

// New creates a switch for the given service configuration, running on
// node, with the default weighted-round-robin policy.
func New(net *simnet.Network, node Node, config *ConfigFile) *Switch {
	s := &Switch{
		Config:   config,
		node:     node,
		net:      net,
		policy:   NewWeightedRoundRobin(),
		handlers: make(map[string]Handler),
		stats:    make(map[string]*Stats),
		cfgSeen:  config.Version,
	}
	s.Instrument(nil)
	return s
}

// Instrument connects the switch's counters and latency histograms to a
// registry, labeled by service name. A nil registry (the default) keeps
// the counters working — they back Routed/Dropped/Retried — but disables
// histogram collection, so the routing hot path stays cheap.
func (s *Switch) Instrument(reg *telemetry.Registry) {
	svc := telemetry.L("service", s.Config.ServiceName)
	routed := reg.Counter("soda_switch_routed_total", svc)
	dropped := reg.Counter("soda_switch_dropped_total", svc)
	retried := reg.Counter("soda_switch_retries_total", svc)
	// Carry forward counts accumulated before instrumentation, so the
	// accessors never regress.
	routed.Add(s.routed.Value())
	dropped.Add(s.dropped.Value())
	retried.Add(s.retried.Value())
	s.reg = reg
	s.routed, s.dropped, s.retried = routed, dropped, retried
	s.latency = reg.Histogram("soda_switch_latency_seconds", nil, svc)
	s.backendLat = make(map[string]*telemetry.Histogram)
}

// Routed returns how many requests were forwarded to a backend.
func (s *Switch) Routed() int { return int(s.routed.Value()) }

// Dropped returns how many requests could not be served (no live
// backend, ill-behaved policy, dead switch node).
func (s *Switch) Dropped() int { return int(s.dropped.Value()) }

// Retried returns how many backend picks were abandoned for another
// (dead, unbound, or mid-flight-failed backends).
func (s *Switch) Retried() int { return int(s.retried.Value()) }

// backendHist returns the per-backend latency histogram, or nil when the
// switch is uninstrumented.
func (s *Switch) backendHist(addr string) *telemetry.Histogram {
	if s.reg == nil {
		return nil
	}
	h, ok := s.backendLat[addr]
	if !ok {
		h = s.reg.Histogram("soda_switch_backend_latency_seconds",
			nil, telemetry.L("service", s.Config.ServiceName), telemetry.L("backend", addr))
		s.backendLat[addr] = h
	}
	return h
}

// IP returns the address clients send requests to.
func (s *Switch) IP() simnet.IP { return s.node.IP() }

// Policy returns the active switching policy.
func (s *Switch) Policy() Policy { return s.policy }

// SetPolicy installs a service-specific policy (the ASP's replacement
// hook, §3.4).
func (s *Switch) SetPolicy(p Policy) {
	if p == nil {
		panic("svcswitch: nil policy")
	}
	s.policy = p
	p.Reset()
}

// OnTrace installs a per-request trace hook, called once per request at
// completion or drop. Nil removes the hook.
func (s *Switch) OnTrace(fn func(Trace)) { s.onTrace = fn }

func (s *Switch) emitTrace(t *Trace) {
	if s.onTrace != nil {
		s.onTrace(*t)
	}
}

// Bind registers the handler for a backend address. The HUP assembly
// binds each virtual service node's service instance after priming.
func (s *Switch) Bind(e BackendEntry, h Handler) {
	s.handlers[e.Addr()] = h
}

// Unbind removes a backend's handler (tear-down, resizing).
func (s *Switch) Unbind(e BackendEntry) {
	delete(s.handlers, e.Addr())
	delete(s.stats, e.Addr())
}

// StatsFor returns the forwarding statistics for a backend address.
func (s *Switch) StatsFor(e BackendEntry) Stats {
	if st := s.stats[e.Addr()]; st != nil {
		return *st
	}
	return Stats{}
}

func (s *Switch) statRef(e BackendEntry) *Stats {
	st := s.stats[e.Addr()]
	if st == nil {
		st = &Stats{}
		s.stats[e.Addr()] = st
	}
	return st
}

// Route accepts one request: LAN hop to the switch, switch CPU, policy
// pick, LAN hop to the backend, service handling. Dead backends are
// skipped (the policy is re-consulted against the remaining set); if no
// live backend remains, the request is dropped.
func (s *Switch) Route(req Request) error {
	tr := &Trace{Accepted: s.net.Kernel().Now()}
	if !s.node.Alive() {
		s.drop(tr)
		return fmt.Errorf("svcswitch: switch node %s is down", s.node.IP())
	}
	if s.Config.Version != s.cfgSeen {
		s.policy.Reset()
		s.cfgSeen = s.Config.Version
	}
	// Client → switch.
	err := s.net.Transfer(req.ClientIP, s.node.IP(), req.Bytes, func() {
		tr.Arrived = s.net.Kernel().Now()
		s.dispatch(req, tr)
	})
	if err != nil {
		s.drop(tr)
		return err
	}
	return nil
}

// drop records a failed request.
func (s *Switch) drop(tr *Trace) {
	s.dropped.Inc()
	if tr.Retries > 0 {
		s.retried.Add(int64(tr.Retries))
	}
	tr.Dropped = true
	tr.Completed = s.net.Kernel().Now()
	s.emitTrace(tr)
}

// dispatch runs at the switch node after the request arrives.
func (s *Switch) dispatch(req Request, tr *Trace) {
	var cost cycles.Cycles
	for _, sc := range requestHandlingSyscalls {
		cost += s.node.SyscallCost(sc)
	}
	ok := s.node.ExecCPU(cost, func() {
		tr.Picked = s.net.Kernel().Now()
		s.forward(req, tr, s.Config.EntriesFor(req.Component))
	})
	if !ok {
		s.drop(tr)
	}
}

// forward picks a backend from candidates and hands the request over,
// retrying with the remaining candidates if the pick is dead, unbound,
// or dies while the forward is in flight.
func (s *Switch) forward(req Request, tr *Trace, candidates []BackendEntry) {
	for len(candidates) > 0 {
		stats := make([]Stats, len(candidates))
		for i, e := range candidates {
			stats[i] = s.StatsFor(e)
		}
		idx, err := s.policy.Pick(candidates, stats)
		if err != nil || idx < 0 || idx >= len(candidates) {
			// Ill-behaved service-specific policy: this request fails;
			// nothing outside this service is touched (§5).
			s.drop(tr)
			return
		}
		entry := candidates[idx]
		remaining := make([]BackendEntry, 0, len(candidates)-1)
		remaining = append(remaining, candidates[:idx]...)
		remaining = append(remaining, candidates[idx+1:]...)
		handler := s.handlers[entry.Addr()]
		if handler == nil {
			tr.Retries++
			candidates = remaining
			continue
		}
		st := s.statRef(entry)
		st.Active++
		// Switch → backend, then service handling.
		err = s.net.Transfer(s.node.IP(), entry.IP, req.Bytes, func() {
			tr.Delivered = s.net.Kernel().Now()
			tr.Backend = entry.Addr()
			ok := handler(req.ClientIP, func() {
				st.Active--
				tr.Completed = s.net.Kernel().Now()
				s.latency.Observe(tr.Total().Seconds())
				s.backendHist(entry.Addr()).Observe(tr.ServiceTime().Seconds())
				if tr.Retries > 0 {
					s.retried.Add(int64(tr.Retries))
				}
				s.emitTrace(tr)
				if req.OnDone != nil {
					req.OnDone()
				}
			})
			if ok {
				st.Forwarded++
				s.routed.Inc()
				return
			}
			// Backend died after the forward: retry the survivors.
			st.Active--
			tr.Retries++
			s.forward(req, tr, remaining)
		})
		if err != nil {
			st.Active--
			tr.Retries++
			candidates = remaining
			continue
		}
		return
	}
	s.drop(tr)
}
