package svcswitch

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cycles"
	"repro/internal/sim"
	"repro/internal/simnet"
)

func entries(caps ...int) []BackendEntry {
	out := make([]BackendEntry, len(caps))
	for i, c := range caps {
		out[i] = BackendEntry{IP: simnet.IP("10.0.0." + string(rune('1'+i))), Port: 8080, Capacity: c}
	}
	return out
}

func TestBackendEntryValidate(t *testing.T) {
	cases := []BackendEntry{
		{},
		{IP: "1.1.1.1"},
		{IP: "1.1.1.1", Port: 70000, Capacity: 1},
		{IP: "1.1.1.1", Port: 80, Capacity: 0},
	}
	for i, e := range cases {
		if e.Validate() == nil {
			t.Errorf("case %d: invalid entry accepted: %+v", i, e)
		}
	}
	if err := (BackendEntry{IP: "1.1.1.1", Port: 80, Capacity: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigFileSetAddRemove(t *testing.T) {
	c := NewConfigFile("web")
	if err := c.SetEntries(entries(2, 1)); err != nil {
		t.Fatal(err)
	}
	if c.TotalCapacity() != 3 || c.Version() != 1 {
		t.Fatalf("capacity=%d version=%d", c.TotalCapacity(), c.Version())
	}
	if err := c.AddEntry(BackendEntry{IP: "10.0.0.9", Port: 8080, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	if c.TotalCapacity() != 4 || c.Version() != 2 {
		t.Fatalf("after add: capacity=%d version=%d", c.TotalCapacity(), c.Version())
	}
	if !c.RemoveEntry("10.0.0.9", 8080) || c.RemoveEntry("10.0.0.9", 8080) {
		t.Fatal("remove semantics wrong")
	}
	if c.Version() != 3 {
		t.Fatalf("version = %d", c.Version())
	}
}

func TestConfigFileRejectsDuplicatesAndInvalid(t *testing.T) {
	c := NewConfigFile("web")
	dup := []BackendEntry{
		{IP: "1.1.1.1", Port: 80, Capacity: 1},
		{IP: "1.1.1.1", Port: 80, Capacity: 2},
	}
	if err := c.SetEntries(dup); err == nil {
		t.Fatal("duplicate backends accepted")
	}
	if err := c.SetEntries([]BackendEntry{{}}); err == nil {
		t.Fatal("invalid entry accepted")
	}
}

func TestConfigRenderMatchesTable3Format(t *testing.T) {
	c := NewConfigFile("webcontent")
	c.SetEntries([]BackendEntry{
		{IP: "128.10.9.125", Port: 8080, Capacity: 2},
		{IP: "128.10.9.126", Port: 8080, Capacity: 1},
	})
	out := c.Render()
	if !strings.Contains(out, "BackEnd 128.10.9.125 8080 2") ||
		!strings.Contains(out, "BackEnd 128.10.9.126 8080 1") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestConfigParseRoundTrip(t *testing.T) {
	c := NewConfigFile("webcontent")
	c.SetEntries(entries(2, 1, 3))
	parsed, err := ParseConfig(c.Render())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.ServiceName != "webcontent" {
		t.Fatalf("service name = %q", parsed.ServiceName)
	}
	if parsed.TotalCapacity() != c.TotalCapacity() || len(parsed.Entries()) != 3 {
		t.Fatal("round trip lost entries")
	}
}

func TestConfigParseErrors(t *testing.T) {
	for _, bad := range []string{
		"FrontEnd 1.1.1.1 80 1",
		"BackEnd 1.1.1.1 eighty 1",
		"BackEnd 1.1.1.1 80 lots",
		"BackEnd 1.1.1.1 80",
	} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("bad line %q accepted", bad)
		}
	}
}

func TestWeightedRoundRobinHonoursCapacities(t *testing.T) {
	p := NewWeightedRoundRobin()
	ents := entries(2, 1)
	counts := make([]int, 2)
	for i := 0; i < 300; i++ {
		idx, err := p.Pick(ents, make([]Stats, 2))
		if err != nil {
			t.Fatal(err)
		}
		counts[idx]++
	}
	if counts[0] != 200 || counts[1] != 100 {
		t.Fatalf("distribution = %v, want exactly 2:1", counts)
	}
}

func TestWeightedRoundRobinIsSmooth(t *testing.T) {
	// Smooth WRR with weights 2:1 never picks the same low-weight backend
	// twice in a row.
	p := NewWeightedRoundRobin()
	ents := entries(2, 1)
	prev := -1
	for i := 0; i < 30; i++ {
		idx, _ := p.Pick(ents, make([]Stats, 2))
		if idx == 1 && prev == 1 {
			t.Fatal("low-capacity backend picked twice consecutively")
		}
		prev = idx
	}
}

func TestWeightedRoundRobinPropertyDistribution(t *testing.T) {
	if err := quick.Check(func(a, b uint8) bool {
		ca, cb := int(a%5)+1, int(b%5)+1
		p := NewWeightedRoundRobin()
		ents := entries(ca, cb)
		total := (ca + cb) * 20
		counts := make([]int, 2)
		for i := 0; i < total; i++ {
			idx, _ := p.Pick(ents, make([]Stats, 2))
			counts[idx]++
		}
		return counts[0] == ca*20 && counts[1] == cb*20
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	ents := entries(5, 1, 1)
	var got []int
	for i := 0; i < 6; i++ {
		idx, _ := p.Pick(ents, make([]Stats, 3))
		got = append(got, idx)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v", got)
		}
	}
}

func TestRandomPolicyInRange(t *testing.T) {
	p := NewRandom(sim.NewRNG(1))
	ents := entries(1, 1, 1)
	for i := 0; i < 100; i++ {
		idx, err := p.Pick(ents, make([]Stats, 3))
		if err != nil || idx < 0 || idx > 2 {
			t.Fatalf("pick = %d, %v", idx, err)
		}
	}
}

func TestLeastActivePicksIdleBackend(t *testing.T) {
	p := NewLeastActive()
	ents := entries(1, 1)
	idx, _ := p.Pick(ents, []Stats{{Active: 5}, {Active: 1}})
	if idx != 1 {
		t.Fatalf("picked %d, want the idle backend", idx)
	}
	// Capacity weighting: 4 active on capacity 2 (load 2) beats 3 on
	// capacity 1 (load 3).
	ents2 := entries(2, 1)
	idx, _ = p.Pick(ents2, []Stats{{Active: 4}, {Active: 3}})
	if idx != 0 {
		t.Fatalf("picked %d, want capacity-weighted least", idx)
	}
}

func TestIllBehavedPolicyMisbehaves(t *testing.T) {
	p := NewIllBehaved()
	ents := entries(1)
	idx, err := p.Pick(ents, make([]Stats, 1))
	if err == nil && idx < len(ents) {
		t.Fatal("ill-behaved policy behaved")
	}
	_, err2 := p.Pick(ents, make([]Stats, 1))
	if (err == nil) == (err2 == nil) {
		t.Fatal("ill-behaved policy should alternate failure modes")
	}
}

// fakeNode satisfies Node with immediate CPU execution over a kernel.
type fakeNode struct {
	ip    simnet.IP
	k     *sim.Kernel
	alive bool
}

func (n *fakeNode) IP() simnet.IP { return n.ip }
func (n *fakeNode) ExecCPU(c cycles.Cycles, onDone func()) bool {
	if !n.alive {
		return false
	}
	n.k.Immediately(onDone)
	return true
}
func (n *fakeNode) SyscallCost(s cycles.Syscall) cycles.Cycles { return cycles.HostCost(s) }
func (n *fakeNode) Alive() bool                                { return n.alive }

func switchFixture(t *testing.T, caps ...int) (*sim.Kernel, *simnet.Network, *Switch, []BackendEntry) {
	t.Helper()
	k := sim.NewKernel()
	net := simnet.New(k, 10*sim.Microsecond)
	host := net.MustAttach("host", 100)
	client := net.MustAttach("client", 100)
	if err := client.AddIP("10.0.1.1"); err != nil {
		t.Fatal(err)
	}
	if err := host.AddIP("10.0.0.0"); err != nil { // switch node address
		t.Fatal(err)
	}
	ents := entries(caps...)
	for _, e := range ents {
		if err := host.AddIP(e.IP); err != nil {
			t.Fatal(err)
		}
	}
	cfg := NewConfigFile("svc")
	if err := cfg.SetEntries(ents); err != nil {
		t.Fatal(err)
	}
	sw := New(net, &fakeNode{ip: "10.0.0.0", k: k, alive: true}, cfg)
	return k, net, sw, ents
}

func TestSwitchRoutesAndCounts(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 2, 1)
	served := make(map[string]int)
	for _, e := range ents {
		e := e
		sw.Bind(e, func(client simnet.IP, onDone func()) bool {
			served[e.Addr()]++
			k.Immediately(onDone)
			return true
		})
	}
	completed := 0
	for i := 0; i < 30; i++ {
		if err := sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 512, OnDone: func() { completed++ }}); err != nil {
			t.Fatal(err)
		}
	}
	k.Run()
	if completed != 30 || sw.Routed() != 30 || sw.Dropped() != 0 {
		t.Fatalf("completed=%d routed=%d dropped=%d", completed, sw.Routed(), sw.Dropped())
	}
	if served[ents[0].Addr()] != 20 || served[ents[1].Addr()] != 10 {
		t.Fatalf("split = %v, want 2:1", served)
	}
	if st := sw.StatsFor(ents[0]); st.Forwarded != 20 || st.Active != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSwitchSkipsDeadBackend(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 1, 1)
	alive := 0
	sw.Bind(ents[0], func(simnet.IP, func()) bool { return false }) // dead
	sw.Bind(ents[1], func(client simnet.IP, onDone func()) bool {
		alive++
		k.Immediately(onDone)
		return true
	})
	for i := 0; i < 10; i++ {
		sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	}
	k.Run()
	if alive != 10 {
		t.Fatalf("live backend served %d of 10", alive)
	}
	if sw.Dropped() != 0 {
		t.Fatalf("dropped = %d", sw.Dropped())
	}
}

func TestSwitchDropsWhenAllBackendsDead(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 1, 1)
	for _, e := range ents {
		sw.Bind(e, func(simnet.IP, func()) bool { return false })
	}
	sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	k.Run()
	if sw.Dropped() != 1 || sw.Routed() != 0 {
		t.Fatalf("dropped=%d routed=%d", sw.Dropped(), sw.Routed())
	}
}

func TestSwitchUnboundBackendsAreSkipped(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 1, 1)
	served := 0
	sw.Bind(ents[1], func(client simnet.IP, onDone func()) bool {
		served++
		k.Immediately(onDone)
		return true
	})
	for i := 0; i < 4; i++ {
		sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	}
	k.Run()
	if served != 4 {
		t.Fatalf("served = %d", served)
	}
}

func TestSwitchIllBehavedPolicyOnlyDropsOwnRequests(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 1)
	sw.Bind(ents[0], func(client simnet.IP, onDone func()) bool {
		k.Immediately(onDone)
		return true
	})
	sw.SetPolicy(NewIllBehaved())
	for i := 0; i < 6; i++ {
		sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	}
	k.Run()
	if sw.Dropped() != 6 {
		t.Fatalf("dropped = %d, want all 6 (bad picks and errors)", sw.Dropped())
	}
	// The switch itself survives: restore a sane policy and serve.
	sw.SetPolicy(NewWeightedRoundRobin())
	done := false
	sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128, OnDone: func() { done = true }})
	k.Run()
	if !done {
		t.Fatal("switch did not recover from ill-behaved policy")
	}
}

func TestSwitchDeadNodeDropsRequests(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 1)
	sw.Bind(ents[0], func(client simnet.IP, onDone func()) bool {
		k.Immediately(onDone)
		return true
	})
	node := sw.node.(*fakeNode)
	node.alive = false
	if err := sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128}); err == nil {
		t.Fatal("dead switch accepted a request")
	}
	if sw.Dropped() != 1 {
		t.Fatalf("dropped = %d", sw.Dropped())
	}
}

func TestSwitchPolicyResetOnConfigChange(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 2, 1)
	for _, e := range ents {
		sw.Bind(e, func(client simnet.IP, onDone func()) bool {
			k.Immediately(onDone)
			return true
		})
	}
	sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	k.Run()
	// Resizing bumps the config version; the next request must reset the
	// policy state without error.
	if err := sw.Config.AddEntry(BackendEntry{IP: "10.0.0.9", Port: 8080, Capacity: 1}); err != nil {
		t.Fatal(err)
	}
	sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	k.Run()
	if sw.Routed() != 2 {
		t.Fatalf("routed = %d", sw.Routed())
	}
}

func TestSwitchSetPolicyNilPanics(t *testing.T) {
	_, _, sw, _ := switchFixture(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil policy accepted")
		}
	}()
	sw.SetPolicy(nil)
}

func TestTraceStagesMonotonic(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 1)
	sw.Bind(ents[0], func(client simnet.IP, onDone func()) bool {
		k.After(5*sim.Millisecond, onDone)
		return true
	})
	var traces []Trace
	sw.OnTrace(func(tr Trace) { traces = append(traces, tr) })
	for i := 0; i < 5; i++ {
		sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 256})
	}
	k.Run()
	if len(traces) != 5 {
		t.Fatalf("traces = %d", len(traces))
	}
	for _, tr := range traces {
		if tr.Dropped {
			t.Fatalf("trace dropped: %+v", tr)
		}
		if !(tr.Accepted <= tr.Arrived && tr.Arrived <= tr.Picked &&
			tr.Picked <= tr.Delivered && tr.Delivered <= tr.Completed) {
			t.Fatalf("stages not monotonic: %+v", tr)
		}
		if tr.Backend != ents[0].Addr() || tr.Retries != 0 {
			t.Fatalf("trace identity wrong: %+v", tr)
		}
		if tr.ServiceTime() < 5*sim.Millisecond {
			t.Fatalf("service time = %v, want ≥5ms", tr.ServiceTime())
		}
		if tr.Total() != tr.SwitchHop()+tr.ServiceTime() {
			t.Fatalf("stage sums wrong: %+v", tr)
		}
	}
}

func TestTraceRecordsRetriesAndDrops(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 1, 1)
	sw.Bind(ents[0], func(simnet.IP, func()) bool { return false })
	sw.Bind(ents[1], func(client simnet.IP, onDone func()) bool {
		k.Immediately(onDone)
		return true
	})
	var traces []Trace
	sw.OnTrace(func(tr Trace) { traces = append(traces, tr) })
	// Policy order is deterministic: the dead backend may be tried first;
	// either way every request completes, possibly after a retry.
	for i := 0; i < 4; i++ {
		sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	}
	k.Run()
	var retried int
	for _, tr := range traces {
		if tr.Dropped {
			t.Fatalf("dropped despite a live backend: %+v", tr)
		}
		retried += tr.Retries
	}
	if retried == 0 {
		t.Fatal("no retries recorded though one backend is dead")
	}
	// Now kill both: traces must mark drops.
	sw.Bind(ents[1], func(simnet.IP, func()) bool { return false })
	traces = nil
	sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	k.Run()
	if len(traces) != 1 || !traces[0].Dropped {
		t.Fatalf("drop not traced: %+v", traces)
	}
}
