package svcswitch

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// Passive backend health tests: consecutive-error ejection and half-open
// re-admission under a flapping backend.

func TestHealthEjectsAfterConsecutiveFailures(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 1, 1)
	sw.SetHealth(HealthConfig{EjectAfter: 3, ProbeAfter: sim.Second})
	served := 0
	sw.Bind(ents[0], func(simnet.IP, func()) bool { return false }) // hard down
	sw.Bind(ents[1], func(client simnet.IP, onDone func()) bool {
		served++
		k.Immediately(onDone)
		return true
	})
	for i := 0; i < 12; i++ {
		sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	}
	k.Run()
	if sw.EjectedTotal() != 1 {
		t.Fatalf("ejections = %d, want 1", sw.EjectedTotal())
	}
	if !sw.BackendEjected(ents[0].Addr()) {
		t.Fatal("dead backend still in rotation")
	}
	if sw.BackendEjected(ents[1].Addr()) {
		t.Fatal("healthy backend ejected")
	}
	if served != 12 || sw.Dropped() != 0 {
		t.Fatalf("served=%d dropped=%d, want all 12 on the live backend", served, sw.Dropped())
	}
}

func TestHealthHalfOpenReadmitsRecoveredBackend(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 1, 1)
	sw.SetHealth(HealthConfig{EjectAfter: 2, ProbeAfter: 500 * sim.Millisecond})
	down := true
	flappyServed := 0
	sw.Bind(ents[0], func(client simnet.IP, onDone func()) bool {
		if down {
			return false
		}
		flappyServed++
		k.Immediately(onDone)
		return true
	})
	sw.Bind(ents[1], func(client simnet.IP, onDone func()) bool {
		k.Immediately(onDone)
		return true
	})
	// Fail it out of the rotation.
	for i := 0; i < 6; i++ {
		sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	}
	k.Run()
	if !sw.BackendEjected(ents[0].Addr()) {
		t.Fatal("backend not ejected after consecutive failures")
	}
	// It recovers, but before ProbeAfter elapses no traffic reaches it.
	down = false
	for i := 0; i < 4; i++ {
		sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	}
	k.Run()
	if flappyServed != 0 {
		t.Fatalf("ejected backend served %d requests inside the hold-off", flappyServed)
	}
	// Past the hold-off, one half-open probe re-admits it; traffic flows.
	k.RunFor(sim.Second)
	for i := 0; i < 8; i++ {
		sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	}
	k.Run()
	if sw.ReadmittedTotal() != 1 {
		t.Fatalf("readmissions = %d, want 1", sw.ReadmittedTotal())
	}
	if sw.BackendEjected(ents[0].Addr()) {
		t.Fatal("backend still ejected after successful probe")
	}
	if flappyServed == 0 {
		t.Fatal("re-admitted backend received no traffic")
	}
}

func TestHealthFailedProbeKeepsBackendOut(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 1, 1)
	sw.SetHealth(HealthConfig{EjectAfter: 1, ProbeAfter: 200 * sim.Millisecond})
	attempts := 0
	sw.Bind(ents[0], func(simnet.IP, func()) bool {
		attempts++
		return false // stays dead through every probe
	})
	sw.Bind(ents[1], func(client simnet.IP, onDone func()) bool {
		k.Immediately(onDone)
		return true
	})
	sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	k.Run()
	if !sw.BackendEjected(ents[0].Addr()) {
		t.Fatal("not ejected after EjectAfter=1 failure")
	}
	ejectedAttempts := attempts
	// Several probe windows pass; each admits at most one probe, every
	// one fails, and the backend never re-enters the rotation.
	for round := 0; round < 3; round++ {
		k.RunFor(300 * sim.Millisecond)
		for i := 0; i < 5; i++ {
			sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
		}
		k.Run()
	}
	if sw.ReadmittedTotal() != 0 {
		t.Fatalf("readmissions = %d for a dead backend", sw.ReadmittedTotal())
	}
	if !sw.BackendEjected(ents[0].Addr()) {
		t.Fatal("dead backend re-admitted")
	}
	probes := attempts - ejectedAttempts
	if probes == 0 || probes > 3 {
		t.Fatalf("probe attempts = %d, want 1..3 (one per window)", probes)
	}
	if sw.Dropped() != 0 {
		t.Fatal("probing dropped client requests")
	}
}

func TestHealthDisabledKeepsAllBackendsInRotation(t *testing.T) {
	k, _, sw, ents := switchFixture(t, 1, 1)
	// No SetHealth: a failing backend is retried per-request but never
	// remembered as bad.
	fails := 0
	sw.Bind(ents[0], func(simnet.IP, func()) bool { fails++; return false })
	sw.Bind(ents[1], func(client simnet.IP, onDone func()) bool {
		k.Immediately(onDone)
		return true
	})
	for i := 0; i < 10; i++ {
		sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 128})
	}
	k.Run()
	if sw.EjectedTotal() != 0 || sw.BackendEjected(ents[0].Addr()) {
		t.Fatal("health tracking active without SetHealth")
	}
	if fails < 5 {
		t.Fatalf("dead backend attempted %d times; WRR should keep offering it", fails)
	}
}
