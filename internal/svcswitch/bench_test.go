package svcswitch

import (
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/reqtrace"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// benchSwitch builds a 3-backend switch outside the testing.T fixture.
func benchSwitch(b *testing.B) (*sim.Kernel, *Switch, []BackendEntry) {
	b.Helper()
	k := sim.NewKernel()
	net := simnet.New(k, 10*sim.Microsecond)
	host := net.MustAttach("host", 1000)
	client := net.MustAttach("client", 1000)
	if err := client.AddIP("10.0.1.1"); err != nil {
		b.Fatal(err)
	}
	if err := host.AddIP("10.0.0.0"); err != nil {
		b.Fatal(err)
	}
	ents := entries(2, 1, 1)
	for _, e := range ents {
		if err := host.AddIP(e.IP); err != nil {
			b.Fatal(err)
		}
	}
	cfg := NewConfigFile("svc")
	if err := cfg.SetEntries(ents); err != nil {
		b.Fatal(err)
	}
	sw := New(net, &fakeNode{ip: "10.0.0.0", k: k, alive: true}, cfg)
	for _, e := range ents {
		sw.Bind(e, func(client simnet.IP, onDone func()) bool {
			k.Immediately(onDone)
			return true
		})
	}
	return k, sw, ents
}

// runRouting drives n requests to completion, chained back-to-back so
// the simulated network sees one flow at a time (concurrent flows make
// the bandwidth-sharing model the bottleneck, not the switch), so the
// two benchmark variants do identical work.
func runRouting(b *testing.B, k *sim.Kernel, sw *Switch, n int) {
	b.Helper()
	completed := 0
	var issue func()
	issue = func() {
		completed++
		if completed >= n {
			return
		}
		if err := sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 512, OnDone: issue}); err != nil {
			b.Fatal(err)
		}
	}
	if err := sw.Route(Request{ClientIP: "10.0.1.1", Bytes: 512, OnDone: issue}); err != nil {
		b.Fatal(err)
	}
	k.Run()
	if completed != n {
		b.Fatalf("completed %d/%d", completed, n)
	}
}

// BenchmarkRouting compares the switch's routing hot path with telemetry
// off (nil registry: counters only) and on (registry-backed counters
// plus service and per-backend latency histograms). The acceptance bar
// for the telemetry layer is < 5% overhead.
func BenchmarkRouting(b *testing.B) {
	for _, instrumented := range []bool{false, true} {
		name := "nil-registry"
		if instrumented {
			name = "telemetry"
		}
		b.Run(name, func(b *testing.B) {
			k, sw, _ := benchSwitch(b)
			if instrumented {
				sw.Instrument(telemetry.NewRegistry())
			}
			b.ReportAllocs()
			b.ResetTimer()
			runRouting(b, k, sw, b.N)
			b.StopTimer()
			if sw.Routed() < b.N {
				b.Fatalf("routed %d < N %d", sw.Routed(), b.N)
			}
		})
	}
}

// BenchmarkRoutingFlight measures the routing hot path with the flight
// recorder attached: the switch logger is live and every histogram
// observation stamps a trace-ID exemplar. The data plane never logs per
// request by design, so this must track BenchmarkRouting/telemetry
// within noise (the exp-level gate is ≤5%).
func BenchmarkRoutingFlight(b *testing.B) {
	k, sw, _ := benchSwitch(b)
	sw.Instrument(telemetry.NewRegistry())
	rec := flight.NewRecorder(flight.Options{
		Clock: func() time.Duration { return k.Now().Duration() },
	})
	sw.SetLogger(flight.NewLogger(rec).Component("switch", telemetry.L("service", "svc")))
	b.ReportAllocs()
	b.ResetTimer()
	runRouting(b, k, sw, b.N)
	b.StopTimer()
	if sw.Routed() < b.N {
		b.Fatalf("routed %d < N %d", sw.Routed(), b.N)
	}
}

// BenchmarkRoutingReqtrace measures the routing hot path with a request
// tracer attached but configured to never retain (head sampling off,
// slow threshold above any simulated latency): the pure cost of the
// tail-sampler verdict on every request. The acceptance bar is 0
// allocs/op — the Record is assembled in the pooled op's scratch field
// and Offer never lets it escape — and ≤2% over BenchmarkRouting/
// telemetry (gated by sodabench -reqtrace in CI).
func BenchmarkRoutingReqtrace(b *testing.B) {
	k, sw, _ := benchSwitch(b)
	sw.Instrument(telemetry.NewRegistry())
	st := reqtrace.NewStore(reqtrace.Config{
		Capacity: 256, HeadEvery: -1, SlowThreshold: time.Hour,
	}, telemetry.NewRegistry())
	sw.SetRequestTracer(st.Collector("svc"))
	b.ReportAllocs()
	b.ResetTimer()
	runRouting(b, k, sw, b.N)
	b.StopTimer()
	if sw.Routed() < b.N {
		b.Fatalf("routed %d < N %d", sw.Routed(), b.N)
	}
	if got := sw.RequestTracer().Retained(); got != 0 {
		b.Fatalf("never-retain collector retained %d", got)
	}
}

// TestRoutingReqtraceZeroAlloc pins the unsampled tracing fast path at
// 0 allocs/op so a regression fails `go test`, not just the benchmark.
func TestRoutingReqtraceZeroAlloc(t *testing.T) {
	res := testing.Benchmark(BenchmarkRoutingReqtrace)
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Fatalf("tracing-enabled unsampled routing allocates %d/op, want 0", allocs)
	}
}

// BenchmarkRegistryCounter measures the raw counter increment, the
// instrument the hot path always pays for.
func BenchmarkRegistryCounter(b *testing.B) {
	for _, registered := range []bool{false, true} {
		name := "unregistered"
		if registered {
			name = "registered"
		}
		b.Run(name, func(b *testing.B) {
			var c *telemetry.Counter
			if registered {
				c = telemetry.NewRegistry().Counter("bench_total", telemetry.L("service", "web"))
			} else {
				var reg *telemetry.Registry
				c = reg.Counter("bench_total")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Inc()
			}
			if c.Value() != int64(b.N) {
				b.Fatal("count mismatch")
			}
		})
	}
}
