// Package svcswitch implements the per-service request switch of §3.4:
// an application-level entity, co-located in one of the service's virtual
// service nodes, that accepts client requests and directs each to a
// backend node according to a replaceable switching policy. The switch's
// state is a service configuration file created and maintained by the
// SODA Master (Table 3).
package svcswitch

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/simnet"
)

// BackendEntry is one row of the service configuration file: a virtual
// service node's address, port, and relative capacity (the number of
// machine instances M mapped to the node, §4.3). Component is the
// partitionable-services extension (§3.5 lists it as future work): when
// non-empty, the node serves only requests for that service component,
// and the switch routes by component.
type BackendEntry struct {
	IP        simnet.IP
	Port      int
	Capacity  int
	Component string
}

// Validate reports the first problem with the entry, or nil.
func (e BackendEntry) Validate() error {
	switch {
	case e.IP == "":
		return fmt.Errorf("svcswitch: entry without IP")
	case e.Port <= 0 || e.Port > 65535:
		return fmt.Errorf("svcswitch: entry %s with bad port %d", e.IP, e.Port)
	case e.Capacity <= 0:
		return fmt.Errorf("svcswitch: entry %s with non-positive capacity %d", e.IP, e.Capacity)
	}
	return nil
}

// Addr renders "ip:port".
func (e BackendEntry) Addr() string { return fmt.Sprintf("%s:%d", e.IP, e.Port) }

// ConfigFile is the service configuration file. Every mutation bumps the
// version so the switch can notice resizing (§3.4: "the service
// configuration file will be updated by the SODA Master to reflect the
// changes").
//
// A ConfigFile is safe for concurrent use: the SODA Master resizes it
// while the live realswitch.Proxy serves requests off it from many
// goroutines. The entry slice is copy-on-write — mutators install a
// fresh slice under the lock and readers of Snapshot share the immutable
// current one — and the version is readable lock-free, so the switch
// data plane's per-request freshness check is a single atomic load.
type ConfigFile struct {
	// ServiceName identifies the service the file belongs to. It is set
	// at construction and never mutated afterwards.
	ServiceName string

	mu      sync.RWMutex
	version atomic.Int64
	entries []BackendEntry // immutable once installed; replaced wholesale
	slo     SLO            // service-level objective; zero = none
	// autoscale is the rendered "# autoscale" stanza — the scaling
	// policy's key=value form. The switch stores it as an opaque string
	// (the policy type lives in internal/autoscale; the config file must
	// not depend on it); empty means no autoscaling.
	autoscale string
}

// NewConfigFile returns an empty configuration for a service.
func NewConfigFile(serviceName string) *ConfigFile {
	return &ConfigFile{ServiceName: serviceName}
}

// Version returns the update count. It is a lock-free atomic read — the
// data plane calls it per request to detect resizing.
func (c *ConfigFile) Version() int { return int(c.version.Load()) }

// Snapshot returns the version and the current backend rows as one
// consistent view. The returned slice is shared and immutable: callers
// must not modify it. This is the zero-copy read the switch data planes
// build their route tables from.
func (c *ConfigFile) Snapshot() (int, []BackendEntry) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return int(c.version.Load()), c.entries
}

// Entries returns a copy of the backend rows.
func (c *ConfigFile) Entries() []BackendEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]BackendEntry(nil), c.entries...)
}

// TotalCapacity sums the capacities — the n of the service's <n, M>.
func (c *ConfigFile) TotalCapacity() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var total int
	for _, e := range c.entries {
		total += e.Capacity
	}
	return total
}

// SetEntries replaces the backend rows atomically, validating each.
func (c *ConfigFile) SetEntries(entries []BackendEntry) error {
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if err := e.Validate(); err != nil {
			return err
		}
		if seen[e.Addr()] {
			return fmt.Errorf("svcswitch: duplicate backend %s", e.Addr())
		}
		seen[e.Addr()] = true
	}
	fresh := append([]BackendEntry(nil), entries...)
	c.mu.Lock()
	c.entries = fresh
	c.version.Add(1)
	c.mu.Unlock()
	return nil
}

// AddEntry appends one backend row (resizing up).
func (c *ConfigFile) AddEntry(e BackendEntry) error {
	return c.SetEntries(append(c.Entries(), e))
}

// RemoveEntry deletes the row with the given address (resizing down),
// reporting whether it existed.
func (c *ConfigFile) RemoveEntry(ip simnet.IP, port int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := make([]BackendEntry, 0, len(c.entries))
	found := false
	for _, e := range c.entries {
		if e.IP == ip && e.Port == port {
			found = true
			continue
		}
		kept = append(kept, e)
	}
	if found {
		c.entries = kept
		c.version.Add(1)
	}
	return found
}

// Render produces the on-disk format of Table 3:
//
//	Directive  IP address    Port number  Capacity
//	BackEnd    128.10.9.125  8080         2
//	BackEnd    128.10.9.126  8080         1
//
// Component-tagged rows (the partitionable extension) carry a fifth
// field: "BackEnd 128.10.9.125 8080 2 checkout".
func (c *ConfigFile) Render() string {
	version, entries := c.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "# service %s (version %d)\n", c.ServiceName, version)
	// The SLO rides along as a comment so the Table 3 directive shape is
	// untouched for services without one.
	if slo := c.SLO(); slo.Enabled() {
		fmt.Fprintf(&b, "# slo %s\n", slo)
	}
	if as := c.Autoscale(); as != "" {
		fmt.Fprintf(&b, "# autoscale %s\n", as)
	}
	for _, e := range entries {
		if e.Component != "" {
			fmt.Fprintf(&b, "BackEnd %s %d %d %s\n", e.IP, e.Port, e.Capacity, e.Component)
		} else {
			fmt.Fprintf(&b, "BackEnd %s %d %d\n", e.IP, e.Port, e.Capacity)
		}
	}
	return b.String()
}

// SetAutoscale records the service's scaling-policy stanza (the
// rendered key=value form; empty clears it). The version bumps so
// consumers of the file notice the policy change.
func (c *ConfigFile) SetAutoscale(stanza string) {
	c.mu.Lock()
	c.autoscale = stanza
	c.version.Add(1)
	c.mu.Unlock()
}

// Autoscale returns the scaling-policy stanza ("" = no autoscaling).
func (c *ConfigFile) Autoscale() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.autoscale
}

// Components returns the distinct component names in the file, sorted,
// with "" first when untagged rows exist.
func (c *ConfigFile) Components() []string {
	_, entries := c.Snapshot()
	seen := make(map[string]bool)
	for _, e := range entries {
		seen[e.Component] = true
	}
	out := make([]string, 0, len(seen))
	for comp := range seen {
		out = append(out, comp)
	}
	sort.Strings(out)
	return out
}

// EntriesFor returns the rows serving one component.
func (c *ConfigFile) EntriesFor(component string) []BackendEntry {
	_, entries := c.Snapshot()
	var out []BackendEntry
	for _, e := range entries {
		if e.Component == component {
			out = append(out, e)
		}
	}
	return out
}

// ParseConfig reads the Render format back. Lines starting with '#' are
// comments; the only directive is BackEnd.
func ParseConfig(s string) (*ConfigFile, error) {
	c := NewConfigFile("")
	var entries []BackendEntry
	for lineNo, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if name, ok := parseHeader(line); ok {
				c.ServiceName = name
			}
			if stanza, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(line, "#")), "autoscale "); ok {
				c.autoscale = strings.TrimSpace(stanza)
			}
			continue
		}
		fields := strings.Fields(line)
		if (len(fields) != 4 && len(fields) != 5) || fields[0] != "BackEnd" {
			return nil, fmt.Errorf("svcswitch: line %d: bad directive %q", lineNo+1, line)
		}
		port, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("svcswitch: line %d: bad port %q", lineNo+1, fields[2])
		}
		capacity, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("svcswitch: line %d: bad capacity %q", lineNo+1, fields[3])
		}
		entry := BackendEntry{IP: simnet.IP(fields[1]), Port: port, Capacity: capacity}
		if len(fields) == 5 {
			entry.Component = fields[4]
		}
		entries = append(entries, entry)
	}
	if err := c.SetEntries(entries); err != nil {
		return nil, err
	}
	c.version.Store(1)
	return c, nil
}

func parseHeader(line string) (string, bool) {
	fields := strings.Fields(strings.TrimPrefix(line, "#"))
	if len(fields) >= 2 && fields[0] == "service" {
		return fields[1], true
	}
	return "", false
}

// Sorted returns the entries ordered by address, for deterministic
// rendering in reports.
func (c *ConfigFile) Sorted() []BackendEntry {
	out := c.Entries()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr() < out[j].Addr() })
	return out
}
