package image

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// DefaultChunkBytes is the fixed chunk size images are split into for
// cooperative distribution. 4 MiB matches the builder's pad-blob size, so
// padded images chunk exactly; real-world systems (BitTorrent, casync,
// OCI layers) pick the same order of magnitude.
const DefaultChunkBytes = 4 << 20

// Chunk wire framing: each chunk fetch is one request/response exchange
// on a persistent connection — a small request naming the chunk, then the
// payload with per-chunk framing.
const (
	chunkReqBytes    = 96
	chunkFrameBytes  = 256
	manifestPerChunk = 48 // id + path hash + lengths on the wire
)

// Chunk is one fixed-size piece of an image's packaged file system,
// addressed by content: the ID digests the piece's identity (path, piece
// index, extent, mode) with FNV-1a — deliberately NOT the image name, so
// a file unchanged between web-1.0 and web-1.1 yields the same chunk ID
// in both manifests and a host holding one version primes the next by
// fetching only the chunks that differ.
type Chunk struct {
	// ID is the chunk's content address (FNV-1a).
	ID uint64
	// Path is the file this piece belongs to.
	Path string
	// Piece is the piece index within the file (0 for files that fit in
	// one chunk).
	Piece int
	// Bytes is the piece's payload size.
	Bytes int64
}

// Manifest is the per-image chunk table: what the repository serves first
// so a daemon can plan a multi-source download. Content bytes are
// synthetic in this model, so the manifest carries a reference to the
// sealed master image; Materialize clones it once every chunk has been
// fetched and verified.
type Manifest struct {
	// ImageName names the image this manifest describes.
	ImageName string
	// Checksum is the sealed image's manifest checksum.
	Checksum uint64
	// ChunkBytes is the chunking granularity used.
	ChunkBytes int64
	// Chunks lists the pieces in file-path order.
	Chunks []Chunk

	byID   map[uint64]*Chunk
	master *Image
}

// fnvMix folds a string and a few integers into an FNV-1a state.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	h ^= 0xff
	h *= fnvPrime64
	return h
}

func fnvInt(h uint64, v int64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime64
	}
	return h
}

// chunkID addresses one piece of one file. The image name is excluded on
// purpose: identity is the content's, not the package's, which is what
// makes version-to-version delta priming fall out for free.
func chunkID(f *File, piece int, pieceBytes int64) uint64 {
	h := uint64(fnvOffset64)
	h = fnvString(h, f.Path)
	h = fnvInt(h, int64(piece))
	h = fnvInt(h, pieceBytes)
	h = fnvInt(h, f.SizeBytes)
	if f.Executable {
		h = fnvInt(h, 1)
	} else {
		h = fnvInt(h, 0)
	}
	if h == 0 {
		h = 1
	}
	return h
}

// BuildManifest splits an image into content-addressed chunks of at most
// chunkBytes each (0 means DefaultChunkBytes). Files larger than the
// chunk size are cut into pieces; smaller files are one chunk each.
// Deterministic: chunks appear in sorted file-path order.
func BuildManifest(im *Image, chunkBytes int64) *Manifest {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunkBytes
	}
	m := &Manifest{
		ImageName:  im.Name,
		Checksum:   im.Checksum,
		ChunkBytes: chunkBytes,
		master:     im,
	}
	for _, f := range im.RootFS.List() {
		remaining := f.SizeBytes
		piece := 0
		for {
			n := remaining
			if n > chunkBytes {
				n = chunkBytes
			}
			m.Chunks = append(m.Chunks, Chunk{
				ID:    chunkID(f, piece, n),
				Path:  f.Path,
				Piece: piece,
				Bytes: n,
			})
			remaining -= n
			piece++
			if remaining <= 0 {
				break
			}
		}
	}
	m.byID = make(map[uint64]*Chunk, len(m.Chunks))
	for i := range m.Chunks {
		m.byID[m.Chunks[i].ID] = &m.Chunks[i]
	}
	return m
}

// ChunkByID returns the chunk with the given content address, or nil.
func (m *Manifest) ChunkByID(id uint64) *Chunk {
	return m.byID[id]
}

// TotalBytes is the payload sum over all chunks (== the image size).
func (m *Manifest) TotalBytes() int64 {
	var total int64
	for i := range m.Chunks {
		total += m.Chunks[i].Bytes
	}
	return total
}

// Materialize assembles the image the manifest describes: a private
// clone of the sealed master, handed out only after the caller has
// fetched and verified every chunk. Nil if the manifest was built
// detached from its image.
func (m *Manifest) Materialize() *Image {
	if m.master == nil {
		return nil
	}
	return m.master.Clone()
}

// ManifestWireBytes is the on-the-wire size of fetching a manifest.
func ManifestWireBytes(m *Manifest) int64 {
	return httpHeaderBytes + int64(len(m.Chunks))*manifestPerChunk
}

// ChunkWireBytes is the on-the-wire size of one chunk transfer: payload
// plus framing.
func ChunkWireBytes(c *Chunk) int64 {
	return c.Bytes + chunkFrameBytes
}

// ChunkRequestBytes is the size of the request naming a chunk.
func ChunkRequestBytes() int64 { return chunkReqBytes }

// CorruptSum returns the checksum a bit-flipped delivery of the chunk
// would carry — what the FaultCorrupt hook hands receivers so per-chunk
// verification catches exactly the damaged piece.
func CorruptSum(id uint64) uint64 {
	s := ^id
	if s == 0 || s == id {
		s = id ^ 1
	}
	return s
}

// FetchManifest transfers the named image's chunk manifest to destIP: a
// small request to the repository, then the manifest payload back.
// Injected FaultError and FaultStall apply (a manifest fetch is a
// download attempt); FaultCorrupt is deferred to the chunk serves, where
// per-chunk verification localises it.
func (r *Repository) FetchManifest(name string, destIP simnet.IP, onDone func(*Manifest), onErr func(error)) {
	fail := func(err error) {
		if onErr != nil {
			onErr(err)
		}
	}
	m, err := r.ManifestFor(name)
	if err != nil {
		fail(err)
		return
	}
	fault := FaultNone
	if r.faultHook != nil {
		fault = r.faultHook(name)
	}
	if fault == FaultStall {
		return // vanishes; the caller's deadline cleans up
	}
	err = r.net.Transfer(destIP, r.IP, httpHeaderBytes, func() {
		if fault == FaultError {
			fail(fmt.Errorf("image: manifest fetch of %q from %s reset: %w", name, r.IP, ErrTransient))
			return
		}
		err := r.net.Transfer(r.IP, destIP, ManifestWireBytes(m), func() {
			if onDone != nil {
				onDone(m)
			}
		})
		if err != nil {
			fail(err)
		}
	})
	if err != nil {
		fail(err)
	}
}

// ManifestFor returns (building and caching on first use) the chunk
// manifest of a published image.
func (r *Repository) ManifestFor(name string) (*Manifest, error) {
	im, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	if r.manifests == nil {
		r.manifests = make(map[string]*Manifest)
	}
	if m, ok := r.manifests[name]; ok && m.master == im {
		return m, nil
	}
	m := BuildManifest(im, r.chunkBytes)
	r.manifests[name] = m
	return m, nil
}

// SetChunkBytes changes the repository's chunking granularity (0 restores
// DefaultChunkBytes) and invalidates cached manifests.
func (r *Repository) SetChunkBytes(n int64) {
	r.chunkBytes = n
	r.manifests = nil
}

// ServeChunk transfers one chunk of the named image to destIP — the
// repository acting as the origin source of a multi-source download.
// onDone receives the delivered payload's checksum, which the receiver
// compares against the chunk ID; an injected FaultCorrupt breaks exactly
// this one delivery, FaultError resets it after the request round-trip,
// and FaultStall swallows it so only the fetcher's deadline notices.
func (r *Repository) ServeChunk(name string, id uint64, destIP simnet.IP, onDone func(sum uint64, payload int64), onErr func(error)) {
	fail := func(err error) {
		if onErr != nil {
			onErr(err)
		}
	}
	m, err := r.ManifestFor(name)
	if err != nil {
		fail(err)
		return
	}
	c := m.ChunkByID(id)
	if c == nil {
		fail(fmt.Errorf("image: %q has no chunk %016x", name, id))
		return
	}
	fault := FaultNone
	if r.faultHook != nil {
		fault = r.faultHook(name)
	}
	if fault == FaultStall {
		return
	}
	err = r.net.Transfer(destIP, r.IP, chunkReqBytes, func() {
		if fault == FaultError {
			fail(fmt.Errorf("image: chunk %016x of %q from %s reset: %w", id, name, r.IP, ErrTransient))
			return
		}
		err := r.net.Transfer(r.IP, destIP, ChunkWireBytes(c), func() {
			if onDone != nil {
				sum := c.ID
				if fault == FaultCorrupt {
					sum = CorruptSum(c.ID)
				}
				onDone(sum, c.Bytes)
			}
		})
		if err != nil {
			fail(err)
		}
	})
	if err != nil {
		fail(err)
	}
}

// EstimateDownloadTimeContended returns the modelled transfer duration
// for an image when `flows` simultaneous downloads share the repository
// link — the mass-prime case EstimateDownloadTime gets wrong: the fluid
// link divides its rate across flows, so each takes ~flows times the
// lone-flow duration. Used to pre-size per-attempt download deadlines so
// a flash-crowd prime is not misdiagnosed as a stall.
func EstimateDownloadTimeContended(im *Image, mbps float64, flows int) sim.Duration {
	if flows < 1 {
		flows = 1
	}
	seconds := float64(WireBytes(im)) * float64(flows) / simnet.Mbps(mbps)
	return sim.Duration(seconds * float64(sim.Second))
}
