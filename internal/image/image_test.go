package image

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/simnet"
)

func TestTreeAddLookupRemove(t *testing.T) {
	tr := NewTree()
	if err := tr.Add("/usr/sbin/httpd", 1024, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add("relative/path", 1, false); err == nil {
		t.Fatal("relative path accepted")
	}
	if err := tr.Add("/", 1, false); err == nil {
		t.Fatal("root path accepted")
	}
	if err := tr.Add("/x", -1, false); err == nil {
		t.Fatal("negative size accepted")
	}
	f := tr.Lookup("/usr/sbin/../sbin/httpd") // path cleaning
	if f == nil || f.SizeBytes != 1024 || !f.Executable {
		t.Fatalf("lookup = %+v", f)
	}
	if !tr.Remove("/usr/sbin/httpd") || tr.Remove("/usr/sbin/httpd") {
		t.Fatal("remove semantics wrong")
	}
}

func TestTreeDuplicateAddReplaces(t *testing.T) {
	tr := NewTree()
	tr.MustAdd("/a", 10, false)
	tr.MustAdd("/a", 20, false)
	if tr.Len() != 1 || tr.SizeBytes() != 20 {
		t.Fatalf("len=%d size=%d", tr.Len(), tr.SizeBytes())
	}
}

func TestTreeRemovePrefix(t *testing.T) {
	tr := NewTree()
	tr.MustAdd("/etc/init.d/httpd", 100, true)
	tr.MustAdd("/etc/init.d/sshd", 200, true)
	tr.MustAdd("/etc/passwd", 50, false)
	n, bytes := tr.RemovePrefix("/etc/init.d")
	if n != 2 || bytes != 300 {
		t.Fatalf("removed %d files, %d bytes", n, bytes)
	}
	if !tr.Contains("/etc/passwd") {
		t.Fatal("sibling removed")
	}
}

func TestTreeSizeAndListOrdering(t *testing.T) {
	tr := NewTree()
	tr.MustAdd("/b", 2, false)
	tr.MustAdd("/a", 1, false)
	tr.MustAdd("/c", 3, false)
	if tr.SizeBytes() != 6 {
		t.Fatalf("size = %d", tr.SizeBytes())
	}
	list := tr.List()
	if list[0].Path != "/a" || list[2].Path != "/c" {
		t.Fatal("list not sorted")
	}
	if tr.SizeMB() != 1 { // rounds up
		t.Fatalf("sizeMB = %d", tr.SizeMB())
	}
}

func TestTreeListDir(t *testing.T) {
	tr := NewTree()
	tr.MustAdd("/var/www/a", 1, false)
	tr.MustAdd("/var/www/b", 1, false)
	tr.MustAdd("/var/log/x", 1, false)
	got := tr.ListDir("/var/www")
	if len(got) != 2 || got[0].Path != "/var/www/a" {
		t.Fatalf("listdir = %v", got)
	}
}

func TestTreeCloneIsDeep(t *testing.T) {
	tr := NewTree()
	tr.MustAdd("/a", 1, false)
	c := tr.Clone()
	c.MustAdd("/b", 2, false)
	c.Lookup("/a").SizeBytes = 99
	if tr.Len() != 1 || tr.Lookup("/a").SizeBytes != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestBuilderProducesValidImage(t *testing.T) {
	im, err := NewBuilder("web-1.0").
		WithService("/usr/sbin/httpd", 2<<20, 8080).
		WithWorkers(4).
		WithSystemServices("network", "syslog").
		WithDataset(8, 64<<10).
		PadToMB(29).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if im.SizeMB() != 29 {
		t.Fatalf("padded size = %dMB", im.SizeMB())
	}
	if !im.RootFS.Contains("/etc/init.d/network") {
		t.Fatal("service init script missing")
	}
	if len(im.RootFS.ListDir("/var/www/data")) != 8 {
		t.Fatal("dataset missing")
	}
	if im.WorkerProcesses != 4 || im.Port != 8080 {
		t.Fatalf("image meta = %+v", im)
	}
}

func TestImageValidation(t *testing.T) {
	if _, err := NewBuilder("x").Build(); err == nil {
		t.Fatal("empty image accepted")
	}
	if _, err := NewBuilder("x").WithService("/srv/app", 1, 0).Build(); err == nil {
		t.Fatal("bad port accepted")
	}
	if _, err := NewBuilder("x").WithService("/srv/app", 1, 80).WithWorkers(0).Build(); err == nil {
		t.Fatal("zero workers accepted")
	}
	im := NewBuilder("x").WithService("/srv/app", 1, 80).MustBuild()
	im.RootFS.Remove("/srv/app")
	if err := im.Validate(); err == nil {
		t.Fatal("missing service command accepted")
	}
}

func TestImageCloneIsDeep(t *testing.T) {
	im := NewBuilder("x").WithService("/srv/app", 100, 80).WithSystemServices("network").MustBuild()
	c := im.Clone()
	c.RootFS.Remove("/srv/app")
	c.SystemServices[0] = "changed"
	if !im.RootFS.Contains("/srv/app") || im.SystemServices[0] != "network" {
		t.Fatal("clone aliases original")
	}
}

func TestPadToMBIdempotentWhenLarge(t *testing.T) {
	im := NewBuilder("x").WithService("/srv/app", 10<<20, 80).PadToMB(5).MustBuild()
	if im.SizeMB() != 10 {
		t.Fatalf("padding shrank image to %dMB", im.SizeMB())
	}
}

func newRepoLAN(t *testing.T) (*sim.Kernel, *simnet.Network, *Repository) {
	t.Helper()
	k := sim.NewKernel()
	n := simnet.New(k, 100*sim.Microsecond)
	asp := n.MustAttach("asp", 100)
	hup := n.MustAttach("hup", 100)
	if err := asp.AddIP("128.10.8.1"); err != nil {
		t.Fatal(err)
	}
	if err := hup.AddIP("128.10.9.1"); err != nil {
		t.Fatal(err)
	}
	repo, err := NewRepository(n, "128.10.8.1")
	if err != nil {
		t.Fatal(err)
	}
	return k, n, repo
}

func TestRepositoryPublishLookup(t *testing.T) {
	_, _, repo := newRepoLAN(t)
	im := NewBuilder("web-1.0").WithService("/usr/sbin/httpd", 1<<20, 8080).MustBuild()
	if err := repo.Publish(im); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Lookup("web-1.0"); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Lookup("nope"); err == nil {
		t.Fatal("missing image found")
	}
	if got := repo.Names(); len(got) != 1 || got[0] != "web-1.0" {
		t.Fatalf("names = %v", got)
	}
}

func TestRepositoryRejectsInvalidImage(t *testing.T) {
	_, _, repo := newRepoLAN(t)
	if err := repo.Publish(&Image{Name: "bad"}); err == nil {
		t.Fatal("invalid image published")
	}
}

func TestRepositoryRequiresBridgedAddress(t *testing.T) {
	k := sim.NewKernel()
	n := simnet.New(k, 0)
	if _, err := NewRepository(n, "9.9.9.9"); err == nil {
		t.Fatal("unbridged repository accepted")
	}
}

func TestDownloadDeliversCloneAfterTransferTime(t *testing.T) {
	k, _, repo := newRepoLAN(t)
	im := NewBuilder("web-1.0").WithService("/usr/sbin/httpd", 1<<20, 8080).PadToMB(10).MustBuild()
	repo.Publish(im)
	var got *Image
	var done sim.Time
	repo.Download("web-1.0", "128.10.9.1", func(c *Image) { got, done = c, k.Now() }, func(err error) { t.Error(err) })
	k.Run()
	if got == nil {
		t.Fatal("download never completed")
	}
	// The clone must be private.
	got.RootFS.Remove("/usr/sbin/httpd")
	if !im.RootFS.Contains("/usr/sbin/httpd") {
		t.Fatal("download returned an aliased image")
	}
	// 10 MB + framing at 100 Mbps ≈ 0.85 s.
	want := float64(WireBytes(im)) / simnet.Mbps(100)
	if math.Abs(done.Seconds()-want) > 0.05*want {
		t.Fatalf("download took %vs, want ≈%vs", done.Seconds(), want)
	}
}

func TestDownloadUnknownImageErrors(t *testing.T) {
	k, _, repo := newRepoLAN(t)
	var gotErr error
	repo.Download("missing", "128.10.9.1", func(*Image) { t.Error("unexpected success") }, func(err error) { gotErr = err })
	k.Run()
	if gotErr == nil {
		t.Fatal("no error for missing image")
	}
}

func TestDownloadTimeLinearInImageSize(t *testing.T) {
	// The §4.3 in-text result: download time grows linearly with size.
	times := make([]float64, 0, 3)
	for _, mb := range []int{20, 40, 80} {
		k, _, repo := newRepoLAN(t)
		im := NewBuilder("img").WithService("/srv/app", 1<<20, 80).PadToMB(mb).MustBuild()
		repo.Publish(im)
		var done sim.Time
		repo.Download("img", "128.10.9.1", func(*Image) { done = k.Now() }, func(err error) { t.Fatal(err) })
		k.Run()
		times = append(times, done.Seconds())
	}
	for i := 1; i < len(times); i++ {
		if r := times[i] / times[i-1]; math.Abs(r-2.0) > 0.05 {
			t.Fatalf("size doubling changed time by %.3f, want ≈2", r)
		}
	}
}

func TestEstimateDownloadTimeMatchesSimulation(t *testing.T) {
	k, _, repo := newRepoLAN(t)
	im := NewBuilder("img").WithService("/srv/app", 1<<20, 80).PadToMB(50).MustBuild()
	repo.Publish(im)
	var done sim.Time
	repo.Download("img", "128.10.9.1", func(*Image) { done = k.Now() }, nil)
	k.Run()
	est := EstimateDownloadTime(im, 100)
	diff := math.Abs(done.Seconds() - est.Seconds())
	if diff > 0.05*est.Seconds() {
		t.Fatalf("estimate %v vs simulated %v", est, done.Seconds())
	}
}

func TestWireBytesExceedPayloadSlightly(t *testing.T) {
	if err := quick.Check(func(mb uint8) bool {
		size := int(mb%100) + 1
		im := NewBuilder("img").WithService("/srv/app", 1<<20, 80).PadToMB(size).MustBuild()
		w := WireBytes(im)
		p := im.SizeBytes()
		return w > p && float64(w) < float64(p)*1.05
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
