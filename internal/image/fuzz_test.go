package image

import (
	"testing"
)

// FuzzImageCorruption drives the image identity machinery — path
// normalisation, manifest checksums, content-addressed chunking — with
// arbitrary inputs and checks the invariants the priming pipeline leans
// on: a sealed image verifies, every single-field mutation breaks
// verification, a manifest covers the image exactly and is deterministic,
// and a corrupted chunk delivery never carries a passing sum. Run under
// `go test -fuzz=FuzzImageCorruption ./internal/image/` (nightly CI gives
// it 10 minutes); plain `go test` replays the seed corpus.
func FuzzImageCorruption(f *testing.F) {
	f.Add("/usr/sbin/httpd", "/var/www/data/a.bin", "/etc/init.d/httpd", uint32(40960), uint32(1<<20), uint32(4096), uint16(64), byte(0), uint32(1))
	f.Add("/a", "/a/../b", "/a//c", uint32(0), uint32(7), uint32(1<<31-1), uint16(0), byte(1), uint32(0))
	f.Add("/x", "/x", "/y", uint32(5), uint32(5), uint32(5), uint16(1), byte(2), uint32(99))
	f.Add("/deep/ly/nested/path", "/./dot", "/..", uint32(1), uint32(2), uint32(3), uint16(1024), byte(3), uint32(7))

	f.Fuzz(func(t *testing.T, p1, p2, p3 string, s1, s2, s3 uint32, chunkKB uint16, mutSel byte, mutArg uint32) {
		tree := NewTree()
		// The service command anchors the image so Validate always has a
		// root to hold on to; the fuzzed paths layer on top (duplicates
		// and normalisation collisions are the point).
		tree.MustAdd("/usr/sbin/svc", 4096, true)
		for i, p := range []string{p1, p2, p3} {
			size := []uint32{s1, s2, s3}[i]
			// Non-absolute or root-naming paths must be rejected, never
			// inserted mangled.
			if err := tree.Add(p, int64(size), i%2 == 0); err != nil {
				if tree.Contains(p) {
					t.Fatalf("Add(%q) errored %v yet the path is present", p, err)
				}
				continue
			}
		}
		im := &Image{
			Name:            "fuzz-image",
			RootFS:          tree,
			ServiceCommand:  "/usr/sbin/svc",
			Port:            8080,
			WorkerProcesses: 1,
		}
		if err := im.Validate(); err != nil {
			t.Fatalf("anchored image failed validation: %v", err)
		}
		im.Seal()
		if !im.Verify() {
			t.Fatal("freshly sealed image does not verify")
		}

		// Manifest invariants: exact coverage, addressability, bounded
		// piece sizes, and build determinism.
		chunkBytes := int64(chunkKB) << 10
		m := BuildManifest(im, chunkBytes)
		effective := chunkBytes
		if effective <= 0 {
			effective = DefaultChunkBytes
		}
		if got, want := m.TotalBytes(), im.SizeBytes(); got != want {
			t.Fatalf("manifest covers %d bytes, image holds %d", got, want)
		}
		for i := range m.Chunks {
			c := &m.Chunks[i]
			if c.Bytes < 0 || c.Bytes > effective {
				t.Fatalf("chunk %d of %s holds %d bytes, granularity %d", c.Piece, c.Path, c.Bytes, effective)
			}
			got := m.ChunkByID(c.ID)
			if got == nil || got.ID != c.ID {
				t.Fatalf("chunk %016x not addressable by its own ID", c.ID)
			}
			if CorruptSum(c.ID) == c.ID {
				t.Fatalf("corrupt delivery of chunk %016x would verify", c.ID)
			}
		}
		again := BuildManifest(im, chunkBytes)
		if len(again.Chunks) != len(m.Chunks) {
			t.Fatalf("rebuild produced %d chunks, first build %d", len(again.Chunks), len(m.Chunks))
		}
		for i := range m.Chunks {
			if again.Chunks[i] != m.Chunks[i] {
				t.Fatalf("rebuild diverged at chunk %d: %+v vs %+v", i, again.Chunks[i], m.Chunks[i])
			}
		}

		// The bit-flip model must always be caught.
		flipped := im.Clone()
		flipped.Corrupt()
		if flipped.Verify() {
			t.Fatal("Corrupt()ed image still verifies")
		}

		// Any single structural mutation of a clone — resize, mode flip,
		// deletion, insertion — must break the inherited checksum: the
		// checksum covers every file's path, size, and mode.
		mutated := im.Clone()
		files := mutated.RootFS.List()
		victim := files[int(mutArg)%len(files)]
		switch mutSel % 4 {
		case 0:
			mutated.RootFS.MustAdd(victim.Path, victim.SizeBytes+1+int64(mutArg), victim.Executable)
		case 1:
			mutated.RootFS.MustAdd(victim.Path, victim.SizeBytes, !victim.Executable)
		case 2:
			if !mutated.RootFS.Remove(victim.Path) {
				t.Fatalf("listed file %q not removable", victim.Path)
			}
		case 3:
			if mutated.RootFS.Contains("/fuzz/planted") {
				return // fuzzed input already claimed the slot; nothing to assert
			}
			mutated.RootFS.MustAdd("/fuzz/planted", int64(mutArg), false)
		}
		if mutated.Verify() {
			t.Fatalf("mutation %d of %q passed verification against the original checksum", mutSel%4, victim.Path)
		}
	})
}
