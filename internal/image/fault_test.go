package image

import (
	"errors"
	"testing"
)

// Checksum and download fault-injection tests: the integrity layer the
// daemon's retry loop depends on.

func TestChecksumSealVerifyCorrupt(t *testing.T) {
	im := NewBuilder("web-1.0").WithService("/usr/sbin/httpd", 1<<20, 8080).PadToMB(5).MustBuild()
	im.Seal()
	if !im.Verify() {
		t.Fatal("sealed image fails verification")
	}
	im.Corrupt()
	if im.Verify() {
		t.Fatal("corrupted image passes verification")
	}
	im.Seal()
	if !im.Verify() {
		t.Fatal("resealed image fails verification")
	}
}

func TestChecksumSensitiveToContent(t *testing.T) {
	a := NewBuilder("x").WithService("/srv/app", 1<<20, 80).MustBuild()
	b := a.Clone()
	if a.ComputeChecksum() != b.ComputeChecksum() {
		t.Fatal("identical images disagree on checksum")
	}
	b.RootFS.Add("/etc/extra", 1, false)
	if a.ComputeChecksum() == b.ComputeChecksum() {
		t.Fatal("checksum blind to added file")
	}
}

func TestDownloadFaultErrorIsTransient(t *testing.T) {
	k, _, repo := newRepoLAN(t)
	im := NewBuilder("web-1.0").WithService("/usr/sbin/httpd", 1<<20, 8080).MustBuild()
	if err := repo.Publish(im); err != nil {
		t.Fatal(err)
	}
	failures := 1
	repo.SetFaultHook(func(name string) FaultKind {
		if name == "web-1.0" && failures > 0 {
			failures--
			return FaultError
		}
		return FaultNone
	})
	var gotErr error
	repo.Download("web-1.0", "128.10.9.1", func(*Image) { t.Error("faulted download succeeded") },
		func(err error) { gotErr = err })
	k.Run()
	if gotErr == nil || !errors.Is(gotErr, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", gotErr)
	}
	// The hook has drained: the next attempt succeeds.
	var got *Image
	repo.Download("web-1.0", "128.10.9.1", func(c *Image) { got = c }, func(err error) { t.Error(err) })
	k.Run()
	if got == nil {
		t.Fatal("clean retry never completed")
	}
}

func TestDownloadFaultCorruptBreaksChecksum(t *testing.T) {
	k, _, repo := newRepoLAN(t)
	im := NewBuilder("web-1.0").WithService("/usr/sbin/httpd", 1<<20, 8080).MustBuild()
	im.Seal()
	if err := repo.Publish(im); err != nil {
		t.Fatal(err)
	}
	repo.SetFaultHook(func(string) FaultKind { return FaultCorrupt })
	var got *Image
	repo.Download("web-1.0", "128.10.9.1", func(c *Image) { got = c }, func(err error) { t.Fatal(err) })
	k.Run()
	if got == nil {
		t.Fatal("corrupt download never delivered")
	}
	if got.Verify() {
		t.Fatal("corrupted delivery passes verification")
	}
	// The published original is untouched.
	orig, err := repo.Lookup("web-1.0")
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Verify() {
		t.Fatal("fault hook corrupted the repository's copy")
	}
}

func TestDownloadFaultStallFiresNoCallback(t *testing.T) {
	k, _, repo := newRepoLAN(t)
	im := NewBuilder("web-1.0").WithService("/usr/sbin/httpd", 1<<20, 8080).MustBuild()
	if err := repo.Publish(im); err != nil {
		t.Fatal(err)
	}
	repo.SetFaultHook(func(string) FaultKind { return FaultStall })
	called := false
	repo.Download("web-1.0", "128.10.9.1", func(*Image) { called = true }, func(error) { called = true })
	k.Run()
	if called {
		t.Fatal("stalled download fired a callback")
	}
	// Removing the hook restores normal service.
	repo.SetFaultHook(nil)
	var got *Image
	repo.Download("web-1.0", "128.10.9.1", func(c *Image) { got = c }, func(err error) { t.Error(err) })
	k.Run()
	if got == nil {
		t.Fatal("download after hook removal never completed")
	}
}
