package image

import (
	"fmt"
	"sort"
)

// Image is a packaged application service: a root file system containing
// the service's executables and data files, organised with one root
// (§3: "the image of service S, including the executables and data files,
// properly organized in a file system").
type Image struct {
	// Name identifies the image in the repository ("webcontent-1.0").
	Name string
	// RootFS is the packaged file system.
	RootFS *Tree
	// SystemServices names the guest-OS (Linux) system services the
	// application requires; the SODA Daemon's tailoring step retains only
	// these and their dependency closure (§4.3).
	SystemServices []string
	// ServiceCommand is the init command that starts the application
	// service after the guest OS boots ("/usr/sbin/httpd").
	ServiceCommand string
	// Port is the TCP port the service listens on.
	Port int
	// WorkerProcesses is how many server processes the service runs in
	// its virtual service node (httpd pre-fork workers, etc.).
	WorkerProcesses int
	// Checksum is the publisher's digest over the image manifest. Zero
	// means the image was never sealed; Verify passes unsealed images so
	// ad-hoc test images keep working without a signing step.
	Checksum uint64
}

// ComputeChecksum digests the image manifest — name, service metadata,
// and every file's path, size, and mode — with FNV-1a. Content bytes are
// synthetic in this model, so the manifest is the identity of the image.
func (im *Image) ComputeChecksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // field separator
		h *= prime64
	}
	mixInt := func(v int64) {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= prime64
		}
	}
	mix(im.Name)
	mix(im.ServiceCommand)
	mixInt(int64(im.Port))
	mixInt(int64(im.WorkerProcesses))
	for _, s := range im.SystemServices {
		mix(s)
	}
	if im.RootFS != nil {
		for _, f := range im.RootFS.List() {
			mix(f.Path)
			mixInt(f.SizeBytes)
			if f.Executable {
				mixInt(1)
			} else {
				mixInt(0)
			}
		}
	}
	if h == 0 {
		h = 1 // keep sealed images distinguishable from unsealed
	}
	return h
}

// Seal stamps the image with its manifest checksum.
func (im *Image) Seal() { im.Checksum = im.ComputeChecksum() }

// Verify reports whether the image matches its checksum. Unsealed
// images (zero checksum) pass.
func (im *Image) Verify() bool {
	return im.Checksum == 0 || im.Checksum == im.ComputeChecksum()
}

// Corrupt flips the checksum so Verify fails — the chaos injector's
// model of a bit-flipped download.
func (im *Image) Corrupt() {
	if im.Checksum == 0 {
		im.Seal()
	}
	im.Checksum = ^im.Checksum
	if im.Checksum == 0 {
		im.Checksum = ^uint64(1)
	}
}

// Validate reports the first problem with the image, or nil.
func (im *Image) Validate() error {
	switch {
	case im.Name == "":
		return fmt.Errorf("image: unnamed image")
	case im.RootFS == nil || im.RootFS.Len() == 0:
		return fmt.Errorf("image %s: empty root file system", im.Name)
	case im.ServiceCommand == "":
		return fmt.Errorf("image %s: no service command", im.Name)
	case !im.RootFS.Contains(im.ServiceCommand):
		return fmt.Errorf("image %s: service command %s not in root file system", im.Name, im.ServiceCommand)
	case im.Port <= 0 || im.Port > 65535:
		return fmt.Errorf("image %s: bad port %d", im.Name, im.Port)
	case im.WorkerProcesses <= 0:
		return fmt.Errorf("image %s: need at least one worker process", im.Name)
	}
	return nil
}

// SizeMB returns the image's packaged size.
func (im *Image) SizeMB() int { return im.RootFS.SizeMB() }

// SizeBytes returns the image's packaged size in bytes.
func (im *Image) SizeBytes() int64 { return im.RootFS.SizeBytes() }

// Clone returns a deep copy of the image, for per-node tailoring.
func (im *Image) Clone() *Image {
	c := *im
	c.RootFS = im.RootFS.Clone()
	c.SystemServices = append([]string(nil), im.SystemServices...)
	return &c
}

// Builder assembles images with synthetic content so tests and the
// benchmark harness can produce file systems of any target size without
// shipping real binaries.
type Builder struct {
	img  *Image
	errs []error
}

// NewBuilder starts an image named name.
func NewBuilder(name string) *Builder {
	return &Builder{img: &Image{Name: name, RootFS: NewTree(), Port: 8080, WorkerProcesses: 1}}
}

// WithService sets the service start command (added to the tree as an
// executable) and listen port.
func (b *Builder) WithService(command string, sizeBytes int64, port int) *Builder {
	if err := b.img.RootFS.Add(command, sizeBytes, true); err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	b.img.ServiceCommand = command
	b.img.Port = port
	return b
}

// WithWorkers sets the number of service worker processes.
func (b *Builder) WithWorkers(n int) *Builder {
	b.img.WorkerProcesses = n
	return b
}

// WithSystemServices declares the guest-OS services the application needs.
// Matching init scripts are added under /etc/init.d/.
func (b *Builder) WithSystemServices(names ...string) *Builder {
	b.img.SystemServices = append(b.img.SystemServices, names...)
	for _, n := range names {
		if err := b.img.RootFS.Add("/etc/init.d/"+n, 4096, true); err != nil {
			b.errs = append(b.errs, err)
		}
	}
	return b
}

// WithFile adds an arbitrary file.
func (b *Builder) WithFile(path string, sizeBytes int64) *Builder {
	if err := b.img.RootFS.Add(path, sizeBytes, false); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// WithDataset adds n data files of the given size under /var/www/data/,
// the static dataset served by the paper's web content service.
func (b *Builder) WithDataset(n int, fileBytes int64) *Builder {
	for i := 0; i < n; i++ {
		b.WithFile(fmt.Sprintf("/var/www/data/file-%04d.bin", i), fileBytes)
	}
	return b
}

// PadToMB adds filler under /usr/lib/ until the image's total size
// reaches the target, reproducing the paper's image sizes (29.3 MB,
// 15 MB, 400 MB, 253 MB) without enumerating every real file.
func (b *Builder) PadToMB(targetMB int) *Builder {
	const chunk = 4 << 20
	want := int64(targetMB) << 20
	i := 0
	for b.img.RootFS.SizeBytes() < want {
		n := want - b.img.RootFS.SizeBytes()
		if n > chunk {
			n = chunk
		}
		b.WithFile(fmt.Sprintf("/usr/lib/pad/blob-%04d", i), n)
		i++
	}
	return b
}

// Build finalises and validates the image.
func (b *Builder) Build() (*Image, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	sort.Strings(b.img.SystemServices)
	if err := b.img.Validate(); err != nil {
		return nil, err
	}
	b.img.Seal()
	return b.img, nil
}

// MustBuild is Build, panicking on error.
func (b *Builder) MustBuild() *Image {
	im, err := b.Build()
	if err != nil {
		panic(err)
	}
	return im
}
