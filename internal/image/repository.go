package image

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/simnet"
)

// ErrTransient marks download failures worth retrying: connection drops,
// checksum mismatches, timeouts. Lookup failures (the image simply is
// not published) are permanent and are not wrapped with it.
var ErrTransient = errors.New("transient download failure")

// FaultKind selects how an injected repository fault manifests to one
// download attempt.
type FaultKind int

// Repository fault kinds.
const (
	// FaultNone leaves the attempt alone.
	FaultNone FaultKind = iota
	// FaultError fails the attempt with a transient error.
	FaultError
	// FaultCorrupt delivers the image with a broken checksum.
	FaultCorrupt
	// FaultStall swallows the attempt: neither callback ever fires, so
	// only the downloader's own deadline can rescue it.
	FaultStall
)

// Repository is the ASP-side image store: "The image should be stored in
// a machine owned by the ASP" (§3). The SODA Daemon downloads images from
// it over HTTP/1.1 (§4.3).
type Repository struct {
	// IP is the repository machine's address on the LAN.
	IP simnet.IP

	net    *simnet.Network
	images map[string]*Image

	// manifests caches each published image's chunk manifest, built
	// lazily at chunkBytes granularity (0 = DefaultChunkBytes).
	manifests  map[string]*Manifest
	chunkBytes int64

	// faultHook, when set, is consulted once per download attempt and
	// may fail, corrupt, or stall it. Installed by the chaos injector.
	faultHook func(name string) FaultKind
}

// SetFaultHook installs (or, with nil, removes) the per-attempt fault
// hook.
func (r *Repository) SetFaultHook(fn func(name string) FaultKind) { r.faultHook = fn }

// HTTP/1.1 transfer framing model: one request/response header exchange
// per download (the daemon fetches the packaged image as a single entity
// over a persistent connection), plus a small per-megabyte framing
// overhead (chunked encoding, TCP/IP headers).
const (
	httpHeaderBytes    = 512
	framingPerMB       = 16 * 1024 // ≈1.6% of payload
	handshakeRoundTrip = 1         // extra latency-paced round trips
)

// NewRepository attaches an image repository to the LAN at the given
// address. The hosting NIC must already bridge the address.
func NewRepository(net *simnet.Network, ip simnet.IP) (*Repository, error) {
	if _, ok := net.Lookup(ip); !ok {
		return nil, fmt.Errorf("image: repository address %s not bridged", ip)
	}
	return &Repository{IP: ip, net: net, images: make(map[string]*Image)}, nil
}

// Publish stores an image, replacing any previous version of the same
// name.
func (r *Repository) Publish(im *Image) error {
	if err := im.Validate(); err != nil {
		return err
	}
	r.images[im.Name] = im
	delete(r.manifests, im.Name) // the next ManifestFor rebuilds
	return nil
}

// Lookup returns the named image, or an error listing what is available.
func (r *Repository) Lookup(name string) (*Image, error) {
	im, ok := r.images[name]
	if !ok {
		return nil, fmt.Errorf("image: %q not in repository at %s (have %v)", name, r.IP, r.Names())
	}
	return im, nil
}

// Names returns the published image names, sorted.
func (r *Repository) Names() []string {
	out := make([]string, 0, len(r.images))
	for n := range r.images {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WireBytes returns the on-the-wire size of downloading im: payload plus
// HTTP/1.1 framing.
func WireBytes(im *Image) int64 {
	payload := im.SizeBytes()
	return payload + httpHeaderBytes + int64(im.SizeMB())*framingPerMB
}

// Download transfers the named image to destIP (a SODA Daemon's host
// address). onDone receives a private clone of the image — the daemon
// tailors its copy without disturbing the repository. Download time is
// governed by the LAN model, so it grows linearly with image size, the
// §4.3 in-text result.
func (r *Repository) Download(name string, destIP simnet.IP, onDone func(*Image), onErr func(error)) {
	fail := func(err error) {
		if onErr != nil {
			onErr(err)
		}
	}
	im, err := r.Lookup(name)
	if err != nil {
		fail(err)
		return
	}
	fault := FaultNone
	if r.faultHook != nil {
		fault = r.faultHook(name)
	}
	if fault == FaultStall {
		return // the attempt vanishes; the caller's deadline cleans up
	}
	// Request: headers to the repository; response: the packaged image.
	err = r.net.Transfer(destIP, r.IP, httpHeaderBytes, func() {
		if fault == FaultError {
			fail(fmt.Errorf("image: download of %q from %s reset: %w", name, r.IP, ErrTransient))
			return
		}
		err := r.net.Transfer(r.IP, destIP, WireBytes(im), func() {
			if onDone != nil {
				c := im.Clone()
				if fault == FaultCorrupt {
					c.Corrupt()
				}
				onDone(c)
			}
		})
		if err != nil {
			fail(err)
		}
	})
	if err != nil {
		fail(err)
	}
}

// EstimateDownloadTime returns the modelled transfer duration for an
// image at the given bottleneck rate, ignoring contention — used by the
// Master for admission estimates.
func EstimateDownloadTime(im *Image, mbps float64) sim.Duration {
	seconds := float64(WireBytes(im)) / simnet.Mbps(mbps)
	return sim.Duration(seconds * float64(sim.Second))
}
