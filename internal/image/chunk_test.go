package image

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func chunkTestImage(t *testing.T) *Image {
	t.Helper()
	return NewBuilder("web-1.0").
		WithService("/usr/sbin/httpd", 2<<20, 8080).
		WithWorkers(4).
		WithSystemServices("network", "syslog").
		WithDataset(8, 64<<10).
		PadToMB(29).
		MustBuild()
}

func TestBuildManifestCoversImageExactly(t *testing.T) {
	im := chunkTestImage(t)
	m := BuildManifest(im, 0)
	if m.ChunkBytes != DefaultChunkBytes {
		t.Fatalf("chunk size %d, want default %d", m.ChunkBytes, int64(DefaultChunkBytes))
	}
	if m.TotalBytes() != im.SizeBytes() {
		t.Fatalf("chunks sum to %d bytes, image is %d", m.TotalBytes(), im.SizeBytes())
	}
	seen := make(map[uint64]bool, len(m.Chunks))
	for i := range m.Chunks {
		c := &m.Chunks[i]
		if c.Bytes <= 0 || c.Bytes > m.ChunkBytes {
			t.Fatalf("chunk %016x has %d bytes outside (0, %d]", c.ID, c.Bytes, m.ChunkBytes)
		}
		if seen[c.ID] {
			t.Fatalf("duplicate chunk id %016x", c.ID)
		}
		seen[c.ID] = true
		if m.ChunkByID(c.ID) != c {
			t.Fatalf("ChunkByID(%016x) does not return the chunk", c.ID)
		}
	}
	if m.ChunkByID(0xdeadbeef) != nil {
		t.Fatal("ChunkByID invented a chunk")
	}
}

func TestBuildManifestSplitsLargeFiles(t *testing.T) {
	im := NewBuilder("big").WithService("/srv/app", 10<<20, 80).MustBuild()
	m := BuildManifest(im, 4<<20)
	var pieces []Chunk
	for _, c := range m.Chunks {
		if c.Path == "/srv/app" {
			pieces = append(pieces, c)
		}
	}
	if len(pieces) != 3 {
		t.Fatalf("10MB file at 4MB chunks split into %d pieces, want 3", len(pieces))
	}
	var sum int64
	for i, c := range pieces {
		if c.Piece != i {
			t.Fatalf("piece %d carries index %d", i, c.Piece)
		}
		sum += c.Bytes
	}
	if sum != 10<<20 {
		t.Fatalf("pieces sum to %d, want %d", sum, int64(10<<20))
	}
	if pieces[0].ID == pieces[1].ID {
		t.Fatal("different pieces of one file share an ID")
	}
}

func TestBuildManifestDeterministic(t *testing.T) {
	a := BuildManifest(chunkTestImage(t), 0)
	b := BuildManifest(chunkTestImage(t), 0)
	if len(a.Chunks) != len(b.Chunks) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a.Chunks), len(b.Chunks))
	}
	for i := range a.Chunks {
		if a.Chunks[i] != b.Chunks[i] {
			t.Fatalf("chunk %d differs across identical builds: %+v vs %+v", i, a.Chunks[i], b.Chunks[i])
		}
	}
}

func TestManifestDeltaSharingAcrossVersions(t *testing.T) {
	// web-1.1 changes the service binary but keeps the padding and
	// dataset; the unchanged files must hash to the same chunk IDs so a
	// host holding web-1.0 only fetches the delta.
	v10 := NewBuilder("web-1.0").WithService("/usr/sbin/httpd", 2<<20, 8080).WithDataset(8, 64<<10).PadToMB(29).MustBuild()
	v11 := NewBuilder("web-1.1").WithService("/usr/sbin/httpd", 3<<20, 8080).WithDataset(8, 64<<10).PadToMB(29).MustBuild()
	m10 := BuildManifest(v10, 0)
	m11 := BuildManifest(v11, 0)
	held := make(map[uint64]bool, len(m10.Chunks))
	for _, c := range m10.Chunks {
		held[c.ID] = true
	}
	var shared, novel int
	for _, c := range m11.Chunks {
		if held[c.ID] {
			shared++
		} else {
			novel++
		}
	}
	if shared == 0 {
		t.Fatal("no chunks shared between versions; delta priming is broken")
	}
	if novel == 0 {
		t.Fatal("changed binary produced no new chunks")
	}
	// The changed binary must not collide with its old self.
	for _, c := range m11.Chunks {
		if c.Path == "/usr/sbin/httpd" && held[c.ID] {
			t.Fatalf("changed file %s piece %d kept its old chunk ID", c.Path, c.Piece)
		}
	}
}

func TestMaterializeReturnsPrivateClone(t *testing.T) {
	im := chunkTestImage(t)
	m := BuildManifest(im, 0)
	got := m.Materialize()
	if got == nil {
		t.Fatal("Materialize returned nil for an attached manifest")
	}
	got.RootFS.Remove("/usr/sbin/httpd")
	if !im.RootFS.Contains("/usr/sbin/httpd") {
		t.Fatal("Materialize aliased the master image")
	}
	detached := &Manifest{ImageName: "x"}
	if detached.Materialize() != nil {
		t.Fatal("detached manifest materialized an image")
	}
}

func TestFetchManifestOverLAN(t *testing.T) {
	k, _, repo := newRepoLAN(t)
	im := chunkTestImage(t)
	repo.Publish(im)
	var got *Manifest
	repo.FetchManifest("web-1.0", "128.10.9.1", func(m *Manifest) { got = m }, func(err error) { t.Error(err) })
	k.Run()
	if got == nil {
		t.Fatal("manifest never arrived")
	}
	if got.ImageName != "web-1.0" || got.Checksum != im.Checksum {
		t.Fatalf("manifest %q sum %x, want %q sum %x", got.ImageName, got.Checksum, "web-1.0", im.Checksum)
	}
	if got.TotalBytes() != im.SizeBytes() {
		t.Fatalf("manifest covers %d bytes, image is %d", got.TotalBytes(), im.SizeBytes())
	}
}

func TestFetchManifestUnknownImageErrors(t *testing.T) {
	k, _, repo := newRepoLAN(t)
	var gotErr error
	repo.FetchManifest("missing", "128.10.9.1", func(*Manifest) { t.Error("unexpected success") }, func(err error) { gotErr = err })
	k.Run()
	if gotErr == nil {
		t.Fatal("no error for missing image")
	}
}

func TestServeChunkDeliversVerifiableSum(t *testing.T) {
	k, _, repo := newRepoLAN(t)
	im := chunkTestImage(t)
	repo.Publish(im)
	m, err := repo.ManifestFor("web-1.0")
	if err != nil {
		t.Fatal(err)
	}
	c := &m.Chunks[0]
	var sum uint64
	var payload int64
	var done sim.Time
	repo.ServeChunk("web-1.0", c.ID, "128.10.9.1", func(s uint64, n int64) { sum, payload, done = s, n, k.Now() }, func(err error) { t.Error(err) })
	k.Run()
	if sum != c.ID {
		t.Fatalf("delivered sum %016x, want %016x", sum, c.ID)
	}
	if payload != c.Bytes {
		t.Fatalf("delivered %d bytes, want %d", payload, c.Bytes)
	}
	// Delivery time tracks the chunk's wire size at the 100 Mbps link,
	// plus one propagation latency per direction.
	want := float64(ChunkWireBytes(c)+ChunkRequestBytes())/(100e6/8) + 2*(100*sim.Microsecond).Seconds()
	if math.Abs(done.Seconds()-want) > 0.10*want {
		t.Fatalf("chunk served in %.4fs, want ≈%.4fs", done.Seconds(), want)
	}
}

func TestServeChunkUnknownChunkErrors(t *testing.T) {
	k, _, repo := newRepoLAN(t)
	repo.Publish(chunkTestImage(t))
	var gotErr error
	repo.ServeChunk("web-1.0", 0xdeadbeef, "128.10.9.1", func(uint64, int64) { t.Error("unexpected success") }, func(err error) { gotErr = err })
	k.Run()
	if gotErr == nil {
		t.Fatal("unknown chunk served")
	}
}

func TestServeChunkFaults(t *testing.T) {
	k, _, repo := newRepoLAN(t)
	im := chunkTestImage(t)
	repo.Publish(im)
	m, _ := repo.ManifestFor("web-1.0")
	c := &m.Chunks[0]

	// Corrupt: delivery completes but the sum no longer matches the ID.
	repo.SetFaultHook(func(string) FaultKind { return FaultCorrupt })
	var sum uint64
	repo.ServeChunk("web-1.0", c.ID, "128.10.9.1", func(s uint64, _ int64) { sum = s }, func(err error) { t.Error(err) })
	k.Run()
	if sum == 0 {
		t.Fatal("corrupt serve never completed")
	}
	if sum == c.ID {
		t.Fatal("corrupt serve delivered a matching sum")
	}
	if sum != CorruptSum(c.ID) {
		t.Fatalf("corrupt sum %016x, want %016x", sum, CorruptSum(c.ID))
	}

	// Error: the attempt resets with a transient error.
	repo.SetFaultHook(func(string) FaultKind { return FaultError })
	var gotErr error
	repo.ServeChunk("web-1.0", c.ID, "128.10.9.1", func(uint64, int64) { t.Error("unexpected success") }, func(err error) { gotErr = err })
	k.Run()
	if gotErr == nil {
		t.Fatal("FaultError serve succeeded")
	}

	// Stall: neither callback fires; only a deadline would notice.
	repo.SetFaultHook(func(string) FaultKind { return FaultStall })
	fired := false
	repo.ServeChunk("web-1.0", c.ID, "128.10.9.1", func(uint64, int64) { fired = true }, func(error) { fired = true })
	k.Run()
	if fired {
		t.Fatal("stalled serve fired a callback")
	}
}

func TestManifestForTracksRepublish(t *testing.T) {
	_, _, repo := newRepoLAN(t)
	repo.Publish(chunkTestImage(t))
	m1, err := repo.ManifestFor("web-1.0")
	if err != nil {
		t.Fatal(err)
	}
	if m2, _ := repo.ManifestFor("web-1.0"); m2 != m1 {
		t.Fatal("manifest not cached across calls")
	}
	// Republish a different build under the same name: the stale
	// manifest must be rebuilt.
	repo.Publish(NewBuilder("web-1.0").WithService("/usr/sbin/httpd", 3<<20, 8080).PadToMB(31).MustBuild())
	m3, err := repo.ManifestFor("web-1.0")
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Fatal("republish served the stale manifest")
	}
}

func TestCorruptSumNeverMatches(t *testing.T) {
	for _, id := range []uint64{0, 1, ^uint64(0), 0xdeadbeefcafef00d} {
		if s := CorruptSum(id); s == id || s == 0 {
			t.Fatalf("CorruptSum(%016x) = %016x", id, s)
		}
	}
}

func TestEstimateDownloadTimeContended(t *testing.T) {
	im := chunkTestImage(t)
	lone := EstimateDownloadTime(im, 100)
	if got := EstimateDownloadTimeContended(im, 100, 1); got != lone {
		t.Fatalf("lone-flow contended estimate %v, want %v", got, lone)
	}
	if got := EstimateDownloadTimeContended(im, 100, 0); got != lone {
		t.Fatalf("zero flows estimate %v, want %v", got, lone)
	}
	eight := EstimateDownloadTimeContended(im, 100, 8)
	if r := float64(eight) / float64(lone); math.Abs(r-8.0) > 1e-9 {
		t.Fatalf("8-flow estimate is %.2fx the lone flow, want 8x", r)
	}
}
