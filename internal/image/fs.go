// Package image models application service images: root file systems
// packaged by the ASP (the paper assumes RPM packaging, §4.3), the
// ASP-side image repository, and the HTTP/1.1 download performed by the
// SODA Daemon during service priming.
package image

import (
	"fmt"
	"path"
	"sort"
	"strings"
)

// File is one entry in a root file system tree.
type File struct {
	// Path is the absolute path within the image ("/etc/init.d/httpd").
	Path string
	// SizeBytes is the file's size.
	SizeBytes int64
	// Executable marks binaries and init scripts.
	Executable bool
}

// Tree is an in-memory root file system: the unit the SODA Daemon
// downloads, tailors, and hands to the UML as its root. Paths are unique;
// directories are implicit.
type Tree struct {
	files map[string]*File
}

// NewTree returns an empty file system.
func NewTree() *Tree {
	return &Tree{files: make(map[string]*File)}
}

// Add inserts a file, normalising the path. Duplicate paths are replaced.
func (t *Tree) Add(p string, size int64, executable bool) error {
	cp, err := cleanPath(p)
	if err != nil {
		return err
	}
	if size < 0 {
		return fmt.Errorf("image: negative size for %s", cp)
	}
	t.files[cp] = &File{Path: cp, SizeBytes: size, Executable: executable}
	return nil
}

// MustAdd is Add, panicking on error; for building fixed images.
func (t *Tree) MustAdd(p string, size int64, executable bool) {
	if err := t.Add(p, size, executable); err != nil {
		panic(err)
	}
}

func cleanPath(p string) (string, error) {
	if !strings.HasPrefix(p, "/") {
		return "", fmt.Errorf("image: path %q is not absolute", p)
	}
	cp := path.Clean(p)
	if cp == "/" {
		return "", fmt.Errorf("image: path %q names the root", p)
	}
	return cp, nil
}

// Remove deletes a file, reporting whether it existed.
func (t *Tree) Remove(p string) bool {
	cp, err := cleanPath(p)
	if err != nil {
		return false
	}
	if _, ok := t.files[cp]; !ok {
		return false
	}
	delete(t.files, cp)
	return true
}

// RemovePrefix deletes every file under the directory prefix, returning
// the number removed and the bytes reclaimed.
func (t *Tree) RemovePrefix(dir string) (int, int64) {
	cp, err := cleanPath(dir)
	if err != nil {
		return 0, 0
	}
	prefix := cp + "/"
	var n int
	var bytes int64
	for p, f := range t.files {
		if p == cp || strings.HasPrefix(p, prefix) {
			n++
			bytes += f.SizeBytes
			delete(t.files, p)
		}
	}
	return n, bytes
}

// Lookup returns the file at p, or nil.
func (t *Tree) Lookup(p string) *File {
	cp, err := cleanPath(p)
	if err != nil {
		return nil
	}
	return t.files[cp]
}

// Contains reports whether the tree holds a file at p.
func (t *Tree) Contains(p string) bool { return t.Lookup(p) != nil }

// Len returns the number of files.
func (t *Tree) Len() int { return len(t.files) }

// SizeBytes returns the total size of all files.
func (t *Tree) SizeBytes() int64 {
	var total int64
	for _, f := range t.files {
		total += f.SizeBytes
	}
	return total
}

// SizeMB returns the total size in whole MiB, rounding up.
func (t *Tree) SizeMB() int {
	const mb = 1 << 20
	return int((t.SizeBytes() + mb - 1) / mb)
}

// List returns every file sorted by path.
func (t *Tree) List() []*File {
	out := make([]*File, 0, len(t.files))
	for _, f := range t.files {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ListDir returns the files directly or transitively under dir, sorted.
func (t *Tree) ListDir(dir string) []*File {
	cp, err := cleanPath(dir)
	if err != nil {
		return nil
	}
	prefix := cp + "/"
	var out []*File
	for p, f := range t.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Clone returns a deep copy — tailoring operates on a copy so the
// downloaded master image can prime multiple virtual service nodes.
func (t *Tree) Clone() *Tree {
	c := NewTree()
	for p, f := range t.files {
		cp := *f
		c.files[p] = &cp
	}
	return c
}
