// Package reqtrace reconstructs individual data-plane requests. The
// aggregate counters and histogram exemplars from PR 1/PR 5 say *that*
// the switch is slow; a request trace says *where* — client→switch hop,
// route pick, upstream transfer, or backend service time — with
// nanosecond attribution per stage.
//
// Tracing every request would melt the hot path, so retention is
// tail-based: the keep/drop decision is made at request *completion*,
// when the outcome is known. Every slow (per-service SLO-derived
// threshold), errored, or retried request is retained; the healthy rest
// is represented by a deterministic 1-in-N head sample keyed on the
// request's trace ID. Retained records land in a bounded per-switch
// ring with eviction accounting, exposed as
// soda_reqtrace_{sampled,retained,evicted}_total.
//
// The unsampled fast path performs no allocation and takes no lock:
// the verdict is a handful of integer compares against immutable
// policy fields plus three counter increments. Offer copies the record
// by value into the preallocated ring only when it is retained, so the
// caller's *Record never escapes (BenchmarkRoutingReqtrace holds the
// 0 allocs/op line).
//
// Determinism: trace IDs come from a per-Store sequence (shared with
// the telemetry exemplar namespace by construction — the switch stamps
// the same ID into ObserveTraced), and the head-sample verdict is
// ID%HeadEvery==0. Under the simulation kernel the ID order and every
// stage duration are virtual-time-exact, so same-seed runs retain
// byte-identical rings.
package reqtrace

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Reason says why the tail sampler retained a record. A record can
// qualify several ways at once; the value is a bitmask.
type Reason uint8

const (
	// KeptSlow: TotalNs reached the collector's slow threshold.
	KeptSlow Reason = 1 << iota
	// KeptError: the request was dropped (all attempts failed).
	KeptError
	// KeptRetry: at least one backend attempt was retried.
	KeptRetry
	// KeptHead: deterministic 1-in-N head sample (ID%HeadEvery==0).
	KeptHead
)

// String renders the bitmask as "slow,retry"-style CSV; empty when the
// record was not retained.
func (r Reason) String() string {
	if r == 0 {
		return ""
	}
	parts := make([]string, 0, 4)
	if r&KeptSlow != 0 {
		parts = append(parts, "slow")
	}
	if r&KeptError != 0 {
		parts = append(parts, "error")
	}
	if r&KeptRetry != 0 {
		parts = append(parts, "retry")
	}
	if r&KeptHead != 0 {
		parts = append(parts, "head")
	}
	return strings.Join(parts, ",")
}

// MarshalJSON renders the Reason as its CSV string so incident bundles
// and /traces read "slow,retry" rather than a bitmask.
func (r Reason) MarshalJSON() ([]byte, error) {
	return []byte(`"` + r.String() + `"`), nil
}

// UnmarshalJSON parses the CSV form written by MarshalJSON.
func (r *Reason) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	*r = 0
	for _, p := range strings.Split(s, ",") {
		switch p {
		case "slow":
			*r |= KeptSlow
		case "error":
			*r |= KeptError
		case "retry":
			*r |= KeptRetry
		case "head":
			*r |= KeptHead
		}
	}
	return nil
}

// Record is one request's reconstructed timeline. Stage durations are
// nanoseconds; a stage the request never reached (e.g. ServeNs on a
// dropped request, QueueNs on the live proxy which has no modeled
// client hop) is zero. The stages partition the total:
//
//	queue    client→switch ingress hop
//	route    switch CPU + policy pick (includes retry re-picks)
//	upstream switch→backend transfer (live proxy: full backend round trip)
//	serve    backend handling + response delivery
type Record struct {
	ID      uint64 `json:"id"`
	Service string `json:"service"`
	// StartNs is the request's arrival offset from the clock epoch —
	// virtual time zero under the simulation kernel, Unix nanoseconds
	// on the live proxy.
	StartNs    int64  `json:"start_ns"`
	Backend    string `json:"backend,omitempty"`
	Retries    int    `json:"retries,omitempty"`
	Dropped    bool   `json:"dropped,omitempty"`
	QueueNs    int64  `json:"queue_ns"`
	RouteNs    int64  `json:"route_ns"`
	UpstreamNs int64  `json:"upstream_ns"`
	ServeNs    int64  `json:"serve_ns"`
	TotalNs    int64  `json:"total_ns"`
	// Why is set by the sampler when the record is retained.
	Why Reason `json:"why,omitempty"`
}

// Config shapes a Store's collectors.
type Config struct {
	// Capacity bounds each per-switch ring. Default 256.
	Capacity int
	// HeadEvery keeps every Nth request regardless of outcome
	// (ID%HeadEvery==0). Default 128; negative disables head sampling.
	// 1 retains everything.
	HeadEvery int
	// SlowThreshold retains any request at least this slow. It is the
	// default only: per-service SLO latency targets override it.
	// Default 250ms; negative disables slow retention.
	SlowThreshold time.Duration
}

// Defaults for Config zero values.
const (
	DefaultCapacity      = 256
	DefaultHeadEvery     = 128
	DefaultSlowThreshold = 250 * time.Millisecond
)

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	if c.HeadEvery == 0 {
		c.HeadEvery = DefaultHeadEvery
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = DefaultSlowThreshold
	}
	return c
}

// Collector is the per-switch tail sampler and retention ring. All
// methods are safe for concurrent use and no-ops on a nil receiver, so
// a switch can call through unconditionally.
type Collector struct {
	service   string
	ids       *atomic.Uint64
	headEvery uint64 // 0 = head sampling disabled
	slowNs    atomic.Int64

	sampled  *telemetry.Counter
	retained *telemetry.Counter
	evicted  *telemetry.Counter

	// slowKept counts retentions whose verdict included KeptSlow — the
	// autoscaler's "requests over the SLO threshold" pressure signal,
	// uncontaminated by head samples.
	slowKept atomic.Uint64

	mu   sync.Mutex
	ring []Record
	next uint64 // total retained; ring slot = next % len(ring)
}

// NextID draws the next trace ID from the owning Store's shared
// sequence. Nil-safe (returns 0, the "untraced" sentinel).
func (c *Collector) NextID() uint64 {
	if c == nil {
		return 0
	}
	return c.ids.Add(1)
}

// SetSlowThreshold overrides the retention threshold, normally from
// the service's SLO latency target. Non-positive disables slow
// retention. Nil-safe.
func (c *Collector) SetSlowThreshold(d time.Duration) {
	if c == nil {
		return
	}
	c.slowNs.Store(int64(d))
}

// SlowThreshold reports the active retention threshold (0 = disabled).
func (c *Collector) SlowThreshold() time.Duration {
	if c == nil {
		return 0
	}
	if ns := c.slowNs.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return 0
}

// verdict computes the tail decision without touching the ring.
func (c *Collector) verdict(rec *Record) Reason {
	var why Reason
	if slow := c.slowNs.Load(); slow > 0 && rec.TotalNs >= slow {
		why |= KeptSlow
	}
	if rec.Dropped {
		why |= KeptError
	}
	if rec.Retries > 0 {
		why |= KeptRetry
	}
	if c.headEvery > 0 && rec.ID%c.headEvery == 0 {
		why |= KeptHead
	}
	return why
}

// Offer presents a completed request to the tail sampler. The record
// is copied into the ring only when retained, so the pointer never
// escapes and the unsampled path allocates nothing. Offer stamps
// rec.Service and, when retaining, rec.Why. Returns whether the record
// was retained. Nil-safe (false).
func (c *Collector) Offer(rec *Record) bool {
	if c == nil {
		return false
	}
	c.sampled.Inc()
	why := c.verdict(rec)
	if why == 0 {
		return false
	}
	rec.Service = c.service
	rec.Why = why
	c.retained.Inc()
	if why&KeptSlow != 0 {
		c.slowKept.Add(1)
	}
	c.mu.Lock()
	slot := c.next % uint64(len(c.ring))
	if c.next >= uint64(len(c.ring)) && c.ring[slot].ID != 0 {
		c.evicted.Inc()
	}
	c.ring[slot] = *rec
	c.next++
	c.mu.Unlock()
	return true
}

// Snapshot copies the retained records, oldest first. Nil-safe (nil).
func (c *Collector) Snapshot() []Record {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.next
	cap64 := uint64(len(c.ring))
	count := n
	if count > cap64 {
		count = cap64
	}
	out := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, c.ring[(n-count+i)%cap64])
	}
	return out
}

// Lookup finds a retained record by trace ID. Nil-safe (miss).
func (c *Collector) Lookup(id uint64) (Record, bool) {
	if c == nil || id == 0 {
		return Record{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.ring {
		if c.ring[i].ID == id {
			return c.ring[i], true
		}
	}
	return Record{}, false
}

// Retained reports how many records were ever retained (including
// since-evicted ones). Nil-safe (0).
func (c *Collector) Retained() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next
}

// RetainedSlow reports how many retained records qualified as slow
// (TotalNs at or over the SLO-derived threshold). Head, error, and
// retry retentions are excluded, so deltas of this counter measure
// genuine over-threshold pressure. Nil-safe (0).
func (c *Collector) RetainedSlow() uint64 {
	if c == nil {
		return 0
	}
	return c.slowKept.Load()
}

// Store owns the shared trace-ID sequence and one Collector per
// service, so IDs are globally unique across switches and /traces/{id}
// resolves unambiguously. Nil-safe throughout.
type Store struct {
	cfg Config
	reg *telemetry.Registry
	ids atomic.Uint64

	mu    sync.Mutex
	bysvc map[string]*Collector
	order []string
}

// NewStore builds a Store; counters register against reg (nil reg is
// fine — telemetry hands out working unregistered instruments).
func NewStore(cfg Config, reg *telemetry.Registry) *Store {
	return &Store{cfg: cfg.withDefaults(), reg: reg, bysvc: make(map[string]*Collector)}
}

// Collector returns (creating on first use) the named service's
// collector. Nil-safe (nil collector, whose methods are no-ops).
func (st *Store) Collector(service string) *Collector {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if c, ok := st.bysvc[service]; ok {
		return c
	}
	head := st.cfg.HeadEvery
	if head < 0 {
		head = 0
	}
	c := &Collector{
		service:   service,
		ids:       &st.ids,
		headEvery: uint64(head),
		sampled:   st.reg.Counter("soda_reqtrace_sampled_total", telemetry.L("service", service)),
		retained:  st.reg.Counter("soda_reqtrace_retained_total", telemetry.L("service", service)),
		evicted:   st.reg.Counter("soda_reqtrace_evicted_total", telemetry.L("service", service)),
	}
	c.ring = make([]Record, st.cfg.Capacity)
	if st.cfg.SlowThreshold > 0 {
		c.slowNs.Store(int64(st.cfg.SlowThreshold))
	}
	st.bysvc[service] = c
	st.order = append(st.order, service)
	return c
}

// Services lists services with collectors, in creation order.
func (st *Store) Services() []string {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]string(nil), st.order...)
}

// Lookup resolves a trace ID across every collector. Nil-safe (miss).
func (st *Store) Lookup(id uint64) (Record, bool) {
	if st == nil {
		return Record{}, false
	}
	for _, c := range st.collectors() {
		if rec, ok := c.Lookup(id); ok {
			return rec, true
		}
	}
	return Record{}, false
}

// Snapshot merges every collector's retained records, sorted by trace
// ID ascending — a deterministic global view. Pass service names to
// restrict; none means all. Nil-safe (nil).
func (st *Store) Snapshot(services ...string) []Record {
	if st == nil {
		return nil
	}
	var out []Record
	if len(services) == 0 {
		for _, c := range st.collectors() {
			out = append(out, c.Snapshot()...)
		}
	} else {
		st.mu.Lock()
		cs := make([]*Collector, 0, len(services))
		for _, s := range services {
			if c, ok := st.bysvc[s]; ok {
				cs = append(cs, c)
			}
		}
		st.mu.Unlock()
		for _, c := range cs {
			out = append(out, c.Snapshot()...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SlowTraces returns up to max of the service's newest retained slow
// records (KeptSlow set), sorted by trace ID ascending — the payload
// an SLO-violation flight bundle embeds. Nil-safe (nil).
func (st *Store) SlowTraces(service string, max int) []Record {
	if st == nil || max <= 0 {
		return nil
	}
	st.mu.Lock()
	c := st.bysvc[service]
	st.mu.Unlock()
	var slow []Record
	for _, rec := range c.Snapshot() {
		if rec.Why&KeptSlow != 0 {
			slow = append(slow, rec)
		}
	}
	if len(slow) > max {
		slow = slow[len(slow)-max:]
	}
	return slow
}

func (st *Store) collectors() []*Collector {
	st.mu.Lock()
	defer st.mu.Unlock()
	cs := make([]*Collector, 0, len(st.order))
	for _, s := range st.order {
		cs = append(cs, st.bysvc[s])
	}
	return cs
}
