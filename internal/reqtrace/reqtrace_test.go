package reqtrace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestReasonString(t *testing.T) {
	cases := []struct {
		r    Reason
		want string
	}{
		{0, ""},
		{KeptSlow, "slow"},
		{KeptError, "error"},
		{KeptRetry, "retry"},
		{KeptHead, "head"},
		{KeptSlow | KeptRetry, "slow,retry"},
		{KeptSlow | KeptError | KeptRetry | KeptHead, "slow,error,retry,head"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reason(%b).String() = %q, want %q", c.r, got, c.want)
		}
	}
}

func TestReasonJSONRoundTrip(t *testing.T) {
	for _, r := range []Reason{0, KeptSlow, KeptError | KeptHead, KeptSlow | KeptRetry} {
		buf, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var back Reason
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatal(err)
		}
		if back != r {
			t.Errorf("round trip %v → %s → %v", r, buf, back)
		}
	}
}

// TestTailRetention exercises each retention rule in isolation.
func TestTailRetention(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewStore(Config{Capacity: 8, HeadEvery: 10, SlowThreshold: time.Millisecond}, reg)
	c := st.Collector("web")

	offer := func(rec Record) (Record, bool) {
		kept := c.Offer(&rec)
		return rec, kept
	}

	// Fast, clean, off the head grid: not retained.
	if rec, kept := offer(Record{ID: 3, TotalNs: 1000}); kept || rec.Why != 0 {
		t.Errorf("fast clean request retained: %+v", rec)
	}
	// Slow: retained with KeptSlow.
	if rec, kept := offer(Record{ID: 4, TotalNs: int64(2 * time.Millisecond)}); !kept || rec.Why != KeptSlow {
		t.Errorf("slow request: kept=%v why=%s", kept, rec.Why)
	}
	// Dropped: KeptError.
	if rec, kept := offer(Record{ID: 5, Dropped: true, TotalNs: 10}); !kept || rec.Why != KeptError {
		t.Errorf("dropped request: kept=%v why=%s", kept, rec.Why)
	}
	// Retried: KeptRetry.
	if rec, kept := offer(Record{ID: 6, Retries: 2, TotalNs: 10}); !kept || rec.Why != KeptRetry {
		t.Errorf("retried request: kept=%v why=%s", kept, rec.Why)
	}
	// On the head grid (ID%10==0): KeptHead.
	if rec, kept := offer(Record{ID: 20, TotalNs: 10}); !kept || rec.Why != KeptHead {
		t.Errorf("head-sampled request: kept=%v why=%s", kept, rec.Why)
	}
	// Qualifies several ways at once: bitmask unions.
	rec, kept := offer(Record{ID: 30, Retries: 1, TotalNs: int64(5 * time.Millisecond)})
	if !kept || rec.Why != KeptSlow|KeptRetry|KeptHead {
		t.Errorf("multi-reason request: kept=%v why=%s", kept, rec.Why)
	}
	// Retained records carry the collector's service.
	if rec.Service != "web" {
		t.Errorf("retained record service = %q, want web", rec.Service)
	}

	snap := telemetry.L("service", "web")
	s := reg.Snapshot()
	if got := s.Counter("soda_reqtrace_sampled_total", snap); got != 6 {
		t.Errorf("sampled_total = %d, want 6", got)
	}
	if got := s.Counter("soda_reqtrace_retained_total", snap); got != 5 {
		t.Errorf("retained_total = %d, want 5", got)
	}
	if got := s.Counter("soda_reqtrace_evicted_total", snap); got != 0 {
		t.Errorf("evicted_total = %d, want 0", got)
	}
}

func TestSlowThresholdOverride(t *testing.T) {
	st := NewStore(Config{SlowThreshold: time.Second}, nil)
	c := st.Collector("web")
	if got := c.SlowThreshold(); got != time.Second {
		t.Fatalf("initial threshold %v", got)
	}
	c.SetSlowThreshold(10 * time.Millisecond)
	rec := Record{ID: 1, TotalNs: int64(20 * time.Millisecond)}
	if !c.Offer(&rec) || rec.Why != KeptSlow {
		t.Errorf("20ms request not retained after 10ms override: %+v", rec)
	}
	// Non-positive disables slow retention entirely.
	c.SetSlowThreshold(-1)
	if c.SlowThreshold() != 0 {
		t.Errorf("disabled threshold reads %v", c.SlowThreshold())
	}
	rec = Record{ID: 3, TotalNs: int64(time.Hour)}
	if c.Offer(&rec) {
		t.Errorf("slow retention fired while disabled: %+v", rec)
	}
}

// TestRingEviction fills a small ring past capacity and checks the
// overwrite accounting and the snapshot window.
func TestRingEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewStore(Config{Capacity: 4, HeadEvery: 1, SlowThreshold: -1}, reg)
	c := st.Collector("web")
	for id := uint64(1); id <= 10; id++ {
		rec := Record{ID: id, TotalNs: int64(id)}
		if !c.Offer(&rec) {
			t.Fatalf("HeadEvery=1 did not retain id %d", id)
		}
	}
	s := reg.Snapshot()
	l := telemetry.L("service", "web")
	if got := s.Counter("soda_reqtrace_retained_total", l); got != 10 {
		t.Errorf("retained_total = %d, want 10", got)
	}
	// 10 inserts into a 4-slot ring evict 6 live records.
	if got := s.Counter("soda_reqtrace_evicted_total", l); got != 6 {
		t.Errorf("evicted_total = %d, want 6", got)
	}
	snap := c.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot size %d, want 4", len(snap))
	}
	for i, rec := range snap {
		if want := uint64(7 + i); rec.ID != want {
			t.Errorf("snapshot[%d].ID = %d, want %d (oldest-first window)", i, rec.ID, want)
		}
	}
	// Evicted IDs no longer resolve; live ones do.
	if _, ok := c.Lookup(3); ok {
		t.Error("evicted id 3 still resolves")
	}
	if rec, ok := c.Lookup(9); !ok || rec.TotalNs != 9 {
		t.Errorf("live id 9: ok=%v rec=%+v", ok, rec)
	}
	if c.Retained() != 10 {
		t.Errorf("Retained() = %d, want 10", c.Retained())
	}
}

// TestHeadSampleDeterminism: the head verdict is a pure function of the
// trace ID, so two same-configured collectors retain identical sets.
func TestHeadSampleDeterminism(t *testing.T) {
	run := func() []Record {
		st := NewStore(Config{Capacity: 64, HeadEvery: 7, SlowThreshold: -1}, nil)
		c := st.Collector("web")
		for i := 0; i < 100; i++ {
			rec := Record{ID: c.NextID(), TotalNs: int64(i)}
			c.Offer(&rec)
		}
		return c.Snapshot()
	}
	a, b := run(), run()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same-config runs diverge:\n%s\n%s", aj, bj)
	}
	if len(a) == 0 {
		t.Fatal("head sample retained nothing")
	}
	for _, rec := range a {
		if rec.ID%7 != 0 || rec.Why != KeptHead {
			t.Errorf("retained %+v off the 1-in-7 grid", rec)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var c *Collector
	if c.NextID() != 0 {
		t.Error("nil NextID != 0")
	}
	c.SetSlowThreshold(time.Second)
	if c.SlowThreshold() != 0 {
		t.Error("nil SlowThreshold != 0")
	}
	if c.Offer(&Record{ID: 1, Dropped: true}) {
		t.Error("nil Offer retained")
	}
	if c.Snapshot() != nil || c.Retained() != 0 {
		t.Error("nil Snapshot/Retained not empty")
	}
	if _, ok := c.Lookup(1); ok {
		t.Error("nil Lookup hit")
	}

	var st *Store
	if st.Collector("web") != nil {
		t.Error("nil Store.Collector != nil")
	}
	if st.Services() != nil || st.Snapshot() != nil || st.SlowTraces("web", 1) != nil {
		t.Error("nil Store accessors not empty")
	}
	if _, ok := st.Lookup(1); ok {
		t.Error("nil Store.Lookup hit")
	}

	// nil registry still hands out working (unregistered) counters.
	live := NewStore(Config{}, nil)
	rec := Record{ID: live.Collector("web").NextID(), Dropped: true}
	if !live.Collector("web").Offer(&rec) {
		t.Error("nil-registry store did not retain a dropped request")
	}
}

// TestStoreMerge: IDs are globally unique across collectors, Snapshot
// merges sorted by ID, and Lookup resolves across services.
func TestStoreMerge(t *testing.T) {
	st := NewStore(Config{Capacity: 16, HeadEvery: 1, SlowThreshold: -1}, nil)
	web, db := st.Collector("web"), st.Collector("db")
	for i := 0; i < 3; i++ {
		r1 := Record{ID: web.NextID()}
		web.Offer(&r1)
		r2 := Record{ID: db.NextID()}
		db.Offer(&r2)
	}
	if got := st.Services(); len(got) != 2 || got[0] != "web" || got[1] != "db" {
		t.Errorf("Services() = %v", got)
	}
	all := st.Snapshot()
	if len(all) != 6 {
		t.Fatalf("merged snapshot %d records, want 6", len(all))
	}
	seen := map[uint64]bool{}
	for i, rec := range all {
		if seen[rec.ID] {
			t.Errorf("duplicate trace ID %d", rec.ID)
		}
		seen[rec.ID] = true
		if i > 0 && all[i-1].ID >= rec.ID {
			t.Errorf("snapshot not ID-sorted at %d", i)
		}
	}
	if rec, ok := st.Lookup(all[4].ID); !ok || rec.ID != all[4].ID {
		t.Errorf("Store.Lookup(%d) = %+v %v", all[4].ID, rec, ok)
	}
	if len(st.Snapshot("db")) != 3 {
		t.Errorf("narrowed snapshot %d records, want 3", len(st.Snapshot("db")))
	}
	// Same collector back on second ask.
	if st.Collector("web") != web {
		t.Error("Collector not idempotent")
	}
}

func TestSlowTraces(t *testing.T) {
	st := NewStore(Config{Capacity: 32, HeadEvery: -1, SlowThreshold: time.Millisecond}, nil)
	c := st.Collector("web")
	for i := 0; i < 8; i++ {
		rec := Record{ID: c.NextID(), TotalNs: int64(2 * time.Millisecond)}
		c.Offer(&rec)
	}
	// A dropped-but-fast request is retained but not slow.
	drop := Record{ID: c.NextID(), Dropped: true, TotalNs: 10}
	c.Offer(&drop)

	slow := st.SlowTraces("web", 5)
	if len(slow) != 5 {
		t.Fatalf("SlowTraces returned %d, want 5", len(slow))
	}
	for i, rec := range slow {
		if rec.Why&KeptSlow == 0 {
			t.Errorf("SlowTraces[%d] lacks KeptSlow: %s", i, rec.Why)
		}
		if i > 0 && slow[i-1].ID >= rec.ID {
			t.Errorf("SlowTraces not ID-sorted at %d", i)
		}
	}
	// Newest five: IDs 4..8.
	if slow[0].ID != 4 || slow[4].ID != 8 {
		t.Errorf("SlowTraces window = [%d..%d], want [4..8]", slow[0].ID, slow[4].ID)
	}
	if st.SlowTraces("nosuch", 5) != nil {
		t.Error("SlowTraces for unknown service not nil")
	}
	if st.SlowTraces("web", 0) != nil {
		t.Error("SlowTraces max=0 not nil")
	}
}

// TestOfferZeroAlloc pins the unsampled fast path at zero allocations.
func TestOfferZeroAlloc(t *testing.T) {
	st := NewStore(Config{Capacity: 8, HeadEvery: -1, SlowThreshold: time.Hour}, nil)
	c := st.Collector("web")
	rec := Record{ID: 1, TotalNs: 100}
	if allocs := testing.AllocsPerRun(1000, func() {
		rec.ID++
		c.Offer(&rec)
	}); allocs != 0 {
		t.Errorf("unsampled Offer allocates %.1f/op, want 0", allocs)
	}
}

// TestConcurrentOffer hammers one collector from many goroutines; run
// with -race this validates the locking discipline, and the counters
// must still reconcile exactly.
func TestConcurrentOffer(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewStore(Config{Capacity: 32, HeadEvery: 4, SlowThreshold: -1}, reg)
	c := st.Collector("web")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := Record{ID: c.NextID(), TotalNs: int64(i)}
				c.Offer(&rec)
				c.Snapshot()
				st.Lookup(rec.ID)
			}
		}()
	}
	wg.Wait()
	s := reg.Snapshot()
	l := telemetry.L("service", "web")
	total := int64(workers * per)
	if got := s.Counter("soda_reqtrace_sampled_total", l); got != total {
		t.Errorf("sampled_total = %d, want %d", got, total)
	}
	// IDs 1..4000 contain exactly 1000 multiples of 4.
	if got := s.Counter("soda_reqtrace_retained_total", l); got != total/4 {
		t.Errorf("retained_total = %d, want %d", got, total/4)
	}
	if got := s.Counter("soda_reqtrace_evicted_total", l); got != total/4-32 {
		t.Errorf("evicted_total = %d, want %d", got, total/4-32)
	}
}
