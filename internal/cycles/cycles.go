// Package cycles is the CPU cycle cost model underlying the SODA
// reproduction. The paper measures two kinds of quantities that reduce to
// cycle counts: syscall completion times (Table 4) and service/boot
// processing costs. Keeping all cycle constants in one package makes the
// calibration auditable — every number below is traceable either to the
// paper's host-OS column of Table 4 or to a stated modelling assumption in
// DESIGN.md.
package cycles

import (
	"fmt"
	"time"
)

// Cycles counts CPU clock cycles.
type Cycles int64

// Hz is a CPU clock rate in cycles per second.
type Hz int64

// Common clock rates.
const (
	MHz Hz = 1e6
	GHz Hz = 1e9
)

// Duration converts a cycle count at the given clock rate into wall
// (virtual) time.
func (c Cycles) Duration(clock Hz) time.Duration {
	if clock <= 0 {
		panic(fmt.Sprintf("cycles: non-positive clock %d", clock))
	}
	return time.Duration(float64(c) / float64(clock) * float64(time.Second))
}

// FromDuration converts a duration at the given clock rate into cycles.
func FromDuration(d time.Duration, clock Hz) Cycles {
	return Cycles(float64(d) / float64(time.Second) * float64(clock))
}

// Syscall identifies a system call in the cost model. The six explicitly
// listed calls are the ones measured in the paper's Table 4; the rest are
// the calls the rest of the simulation needs (file and socket I/O).
type Syscall int

// Syscalls with modelled costs.
const (
	Dup2 Syscall = iota
	Getpid
	Geteuid
	Mmap
	MmapMunmap
	Gettimeofday
	Read
	Write
	Open
	Close
	Socket
	Send
	Recv
	Fork
	Execve
	numSyscalls
)

var syscallNames = [...]string{
	Dup2:         "dup2",
	Getpid:       "getpid",
	Geteuid:      "geteuid",
	Mmap:         "mmap",
	MmapMunmap:   "mmap_munmap",
	Gettimeofday: "gettimeofday",
	Read:         "read",
	Write:        "write",
	Open:         "open",
	Close:        "close",
	Socket:       "socket",
	Send:         "send",
	Recv:         "recv",
	Fork:         "fork",
	Execve:       "execve",
}

// String returns the syscall's conventional name.
func (s Syscall) String() string {
	if s < 0 || s >= numSyscalls {
		return fmt.Sprintf("syscall(%d)", int(s))
	}
	return syscallNames[s]
}

// Table4Syscalls lists, in the paper's order, the six syscalls measured in
// Table 4.
var Table4Syscalls = []Syscall{Dup2, Getpid, Geteuid, Mmap, MmapMunmap, Gettimeofday}

// hostCost is the cost of each syscall executed directly in the host OS.
// The six Table 4 entries are the paper's measured host-OS column; the
// others are modelled relative to them (I/O calls cost more than getpid,
// process-creation calls much more).
var hostCost = [...]Cycles{
	Dup2:         1208,
	Getpid:       1064,
	Geteuid:      1084,
	Mmap:         1208,
	MmapMunmap:   1200,
	Gettimeofday: 1368,
	Read:         2400,
	Write:        2600,
	Open:         5200,
	Close:        1500,
	Socket:       4800,
	Send:         3000,
	Recv:         3000,
	Fork:         90000,
	Execve:       180000,
}

// The UML syscall path: every guest syscall is intercepted by the tracing
// thread via ptrace. Each interception costs four host context switches
// (guest process → host kernel → tracing thread → host kernel → guest
// process, with ptrace stops on entry and exit) plus the tracing thread's
// own decoding/redirection work. These constants reproduce the paper's
// ≈26 k-cycle UML column within a few percent.
const (
	// ContextSwitch is the host-OS context switch cost.
	ContextSwitch Cycles = 4600
	// ptraceStops is the number of context switches per intercepted call.
	ptraceStops = 4
	// TracingThreadWork is the tracing thread's per-call decode/redirect cost.
	TracingThreadWork Cycles = 7500
	// TimeVirtualization is the extra work gettimeofday needs inside a
	// guest: the tracing thread must translate host time into the guest's
	// virtualized clock. It explains why gettimeofday's UML overhead in
	// Table 4 exceeds the other calls' by ~10k cycles.
	TimeVirtualization Cycles = 9700
)

// InterceptionOverhead is the fixed per-syscall cost added by the UML
// tracing-thread redirection path.
const InterceptionOverhead = ptraceStops*ContextSwitch + TracingThreadWork

// HostCost returns the cycle cost of executing s directly on the host OS.
func HostCost(s Syscall) Cycles {
	if s < 0 || s >= numSyscalls {
		panic(fmt.Sprintf("cycles: unknown syscall %d", int(s)))
	}
	return hostCost[s]
}

// UMLCost returns the cycle cost of executing s inside a UML guest: the
// host cost plus tracing-thread interception, plus time-virtualization
// work for gettimeofday.
func UMLCost(s Syscall) Cycles {
	c := HostCost(s) + InterceptionOverhead
	if s == Gettimeofday {
		c += TimeVirtualization
	}
	return c
}

// SlowdownFactor returns the UML/host cost ratio for syscall s.
func SlowdownFactor(s Syscall) float64 {
	return float64(UMLCost(s)) / float64(HostCost(s))
}
