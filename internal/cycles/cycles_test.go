package cycles

import (
	"testing"
	"time"
)

func TestDurationConversionRoundTrip(t *testing.T) {
	c := Cycles(2_600_000_000) // one second at 2.6 GHz
	d := c.Duration(2600 * MHz)
	if d != time.Second {
		t.Fatalf("duration = %v, want 1s", d)
	}
	back := FromDuration(d, 2600*MHz)
	if back != c {
		t.Fatalf("round trip = %d, want %d", back, c)
	}
}

func TestDurationPanicsOnZeroClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero clock")
		}
	}()
	Cycles(1).Duration(0)
}

func TestHostCostsMatchPaperTable4(t *testing.T) {
	want := map[Syscall]Cycles{
		Dup2:         1208,
		Getpid:       1064,
		Geteuid:      1084,
		Mmap:         1208,
		MmapMunmap:   1200,
		Gettimeofday: 1368,
	}
	for s, c := range want {
		if got := HostCost(s); got != c {
			t.Errorf("HostCost(%v) = %d, want %d (paper Table 4)", s, got, c)
		}
	}
}

func TestUMLCostsWithinFivePercentOfPaper(t *testing.T) {
	paper := map[Syscall]Cycles{
		Dup2:         27276,
		Getpid:       26648,
		Geteuid:      26904,
		Mmap:         27864,
		MmapMunmap:   27044,
		Gettimeofday: 37004,
	}
	for s, want := range paper {
		got := UMLCost(s)
		diff := float64(got-want) / float64(want)
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.05 {
			t.Errorf("UMLCost(%v) = %d, paper %d (off by %.1f%%)", s, got, want, diff*100)
		}
	}
}

func TestSlowdownFactorIsLarge(t *testing.T) {
	for _, s := range Table4Syscalls {
		f := SlowdownFactor(s)
		if f < 15 || f > 35 {
			t.Errorf("slowdown(%v) = %.1f, expect 15–35× per paper", s, f)
		}
	}
}

func TestGettimeofdayHasExtraVirtualizationCost(t *testing.T) {
	base := UMLCost(Getpid) - HostCost(Getpid)
	gtod := UMLCost(Gettimeofday) - HostCost(Gettimeofday)
	if gtod-base != TimeVirtualization {
		t.Fatalf("gettimeofday extra = %d, want %d", gtod-base, TimeVirtualization)
	}
}

func TestSyscallStrings(t *testing.T) {
	if Dup2.String() != "dup2" || Gettimeofday.String() != "gettimeofday" {
		t.Fatal("syscall names wrong")
	}
	if Syscall(999).String() != "syscall(999)" {
		t.Fatal("out-of-range name wrong")
	}
}

func TestAllSyscallsHavePositiveCosts(t *testing.T) {
	for s := Syscall(0); s < numSyscalls; s++ {
		if HostCost(s) <= 0 {
			t.Errorf("HostCost(%v) not positive", s)
		}
		if UMLCost(s) <= HostCost(s) {
			t.Errorf("UMLCost(%v) not greater than host cost", s)
		}
	}
}

func TestUnknownSyscallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown syscall")
		}
	}()
	HostCost(numSyscalls)
}
