package hostos

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/hostos/sched"
	"repro/internal/sim"
)

func newSeattle(t *testing.T, s sched.Scheduler) (*sim.Kernel, *Host) {
	t.Helper()
	k := sim.NewKernel()
	h, err := New(k, Seattle(), s)
	if err != nil {
		t.Fatal(err)
	}
	return k, h
}

func TestSpecValidation(t *testing.T) {
	cases := []Spec{
		{},
		{Name: "x"},
		{Name: "x", Clock: cycles.GHz},
		{Name: "x", Clock: cycles.GHz, MemoryMB: 1},
		{Name: "x", Clock: cycles.GHz, MemoryMB: 1, DiskMB: 1},
		{Name: "x", Clock: cycles.GHz, MemoryMB: 1, DiskMB: 1, DiskWriteMBps: 1, DiskReadMBps: 1},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, s)
		}
	}
	if err := Seattle().Validate(); err != nil {
		t.Errorf("seattle spec rejected: %v", err)
	}
	if err := Tacoma().Validate(); err != nil {
		t.Errorf("tacoma spec rejected: %v", err)
	}
}

func TestPaperTestbedSpecs(t *testing.T) {
	s, ta := Seattle(), Tacoma()
	if s.Clock != 2600*cycles.MHz || s.MemoryMB != 2048 {
		t.Fatalf("seattle = %+v, want 2.6GHz/2GB per paper §4", s)
	}
	if ta.Clock != 1800*cycles.MHz || ta.MemoryMB != 768 {
		t.Fatalf("tacoma = %+v, want 1.8GHz/768MB per paper §4", ta)
	}
	if s.NICMbps != 100 || ta.NICMbps != 100 {
		t.Fatal("testbed LAN is 100Mbps per paper §4")
	}
}

func TestExecBurstDuration(t *testing.T) {
	k, h := newSeattle(t, nil)
	p := h.Spawn("job", 1000)
	var done sim.Time
	p.Exec(2_600_000_000, func() { done = k.Now() }) // 1s at 2.6GHz
	k.Run()
	if done != sim.Time(sim.Second) {
		t.Fatalf("burst finished at %v, want 1s", done)
	}
}

func TestSyscallCostsGuestVsHost(t *testing.T) {
	k, h := newSeattle(t, nil)
	p := h.Spawn("svc", 1000)
	var hostDone, guestDone sim.Duration
	p.Syscall(cycles.Getpid, false, func() { hostDone = k.Now().Duration() })
	k.Run()
	start := k.Now()
	p.Syscall(cycles.Getpid, true, func() { guestDone = k.Now().Sub(start) })
	k.Run()
	ratio := float64(guestDone) / float64(hostDone)
	want := cycles.SlowdownFactor(cycles.Getpid)
	if math.Abs(ratio-want) > 0.2 {
		t.Fatalf("guest/host syscall ratio = %.1f, want %.1f", ratio, want)
	}
}

func TestProcessTableAndKill(t *testing.T) {
	_, h := newSeattle(t, nil)
	a := h.Spawn("a", 1)
	b := h.Spawn("b", 2)
	if len(h.Processes()) != 2 {
		t.Fatal("process table wrong")
	}
	if a.PID == b.PID {
		t.Fatal("duplicate PIDs")
	}
	killed := false
	a.OnKill(func() { killed = true })
	h.Kill(a)
	h.Kill(a) // idempotent
	if a.Alive() || !killed {
		t.Fatal("kill did not take effect")
	}
	if len(h.Processes()) != 1 || h.Processes()[0] != b {
		t.Fatal("process table after kill wrong")
	}
}

func TestKillCancelsInFlightWork(t *testing.T) {
	k, h := newSeattle(t, nil)
	p := h.Spawn("victim", 1)
	completed := false
	p.Exec(cycles.Cycles(h.Spec.Clock), func() { completed = true }) // 1s of work
	k.After(500*sim.Millisecond, func() { h.Kill(p) })
	k.Run()
	if completed {
		t.Fatal("killed process's burst completed")
	}
	// Partial service must still be accounted to the uid.
	got := h.CPUCyclesFor(1)
	want := float64(h.Spec.Clock) / 2
	if math.Abs(got-want) > want*0.01 {
		t.Fatalf("accounted cycles = %v, want ≈%v", got, want)
	}
}

func TestKillUIDTakesDownWholeServiceNode(t *testing.T) {
	_, h := newSeattle(t, nil)
	for i := 0; i < 5; i++ {
		h.Spawn("guest-proc", 1000)
	}
	other := h.Spawn("other-service", 2000)
	if n := h.KillUID(1000); n != 5 {
		t.Fatalf("killed %d, want 5", n)
	}
	if !other.Alive() {
		t.Fatal("kill leaked across userids — isolation violated")
	}
	if len(h.ProcessesByUID(1000)) != 0 {
		t.Fatal("uid 1000 still has processes")
	}
}

func TestExecOnDeadProcessIsNoop(t *testing.T) {
	k, h := newSeattle(t, nil)
	p := h.Spawn("dead", 1)
	h.Kill(p)
	if f := p.Exec(1000, func() { t.Error("dead process ran") }); f != nil {
		t.Fatal("Exec on dead process returned a flow")
	}
	k.Run()
}

func TestSpinConsumesCPUIndefinitely(t *testing.T) {
	k, h := newSeattle(t, nil)
	p := h.Spawn("comp", 42)
	p.Spin()
	k.RunUntil(sim.Time(10 * sim.Second))
	got := h.CPUCyclesFor(42)
	want := 10 * float64(h.Spec.Clock)
	if math.Abs(got-want) > want*0.001 {
		t.Fatalf("spin consumed %v cycles, want ≈%v", got, want)
	}
}

func TestWriteDiskTakesBandwidthTime(t *testing.T) {
	k, h := newSeattle(t, nil)
	p := h.Spawn("log", 1)
	var done sim.Time
	n := int64(h.Spec.DiskWriteMBps * 1024 * 1024) // 1 second of writes
	p.WriteDisk(n, func() { done = k.Now() })
	k.Run()
	if done.Seconds() < 1.0 || done.Seconds() > 1.1 {
		t.Fatalf("write finished at %vs, want ≈1s + small CPU cost", done.Seconds())
	}
}

func TestSchedulerSwapMidRun(t *testing.T) {
	k, h := newSeattle(t, sched.NewFairShare())
	// uid 1: three spinners; uid 2: one spinner. Fair share gives uid 1
	// 75%; proportional with equal shares gives 50/50.
	for i := 0; i < 3; i++ {
		h.Spawn("a", 1).Spin()
	}
	h.Spawn("b", 2).Spin()
	k.RunUntil(sim.Time(10 * sim.Second))
	u1 := h.CPUCyclesFor(1)
	u2 := h.CPUCyclesFor(2)
	if r := u1 / (u1 + u2); math.Abs(r-0.75) > 0.01 {
		t.Fatalf("fair-share uid1 fraction = %.3f, want 0.75", r)
	}
	prop := sched.NewProportional()
	prop.SetShare(1, 512)
	prop.SetShare(2, 512)
	h.SetScheduler(prop)
	base1, base2 := u1, u2
	k.RunUntil(sim.Time(20 * sim.Second))
	d1 := h.CPUCyclesFor(1) - base1
	d2 := h.CPUCyclesFor(2) - base2
	if r := d1 / (d1 + d2); math.Abs(r-0.5) > 0.01 {
		t.Fatalf("proportional uid1 fraction = %.3f, want 0.5", r)
	}
}

func TestReserveAndRelease(t *testing.T) {
	_, h := newSeattle(t, nil)
	req := SliceRequest{CPUMHz: 512, MemoryMB: 256, DiskMB: 1024, BandwidthMbps: 10}
	r, err := h.Reserve(1000, req)
	if err != nil {
		t.Fatal(err)
	}
	avail := h.Available()
	if avail.CPUMHz != 2600-512 || avail.MemoryMB != 2048-256 {
		t.Fatalf("available after reserve = %+v", avail)
	}
	r.Release()
	r.Release() // idempotent
	if got := h.Available(); got.CPUMHz != 2600 || got.MemoryMB != 2048 {
		t.Fatalf("available after release = %+v", got)
	}
}

func TestReserveRejectsOverCommit(t *testing.T) {
	_, h := newSeattle(t, nil)
	big := SliceRequest{CPUMHz: 2000, MemoryMB: 1500, DiskMB: 1024, BandwidthMbps: 50}
	if _, err := h.Reserve(1, big); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Reserve(2, big); err == nil {
		t.Fatal("overcommit accepted")
	}
	if !h.CanReserve(SliceRequest{CPUMHz: 600, MemoryMB: 500, DiskMB: 1024, BandwidthMbps: 50}) {
		t.Fatal("remaining capacity refused")
	}
}

func TestReserveValidatesRequest(t *testing.T) {
	_, h := newSeattle(t, nil)
	if _, err := h.Reserve(1, SliceRequest{}); err == nil {
		t.Fatal("zero request accepted")
	}
}

func TestReservationRegistersSchedulerShare(t *testing.T) {
	prop := sched.NewProportional()
	_, h := newSeattle(t, prop)
	r, err := h.Reserve(1000, SliceRequest{CPUMHz: 512, MemoryMB: 64, DiskMB: 64, BandwidthMbps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := prop.Share(1000); !ok || w != 512 {
		t.Fatalf("share = %v,%v, want 512,true", w, ok)
	}
	r.Release()
	if _, ok := prop.Share(1000); ok {
		t.Fatal("share survived release")
	}
}

func TestReservationResize(t *testing.T) {
	_, h := newSeattle(t, nil)
	r, err := h.Reserve(1, SliceRequest{CPUMHz: 512, MemoryMB: 256, DiskMB: 1024, BandwidthMbps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Resize(SliceRequest{CPUMHz: 1024, MemoryMB: 512, DiskMB: 2048, BandwidthMbps: 20}); err != nil {
		t.Fatal(err)
	}
	if got := h.Available().CPUMHz; got != 2600-1024 {
		t.Fatalf("available CPU after resize = %d", got)
	}
	// Resize beyond the machine fails and leaves the reservation intact.
	if err := r.Resize(SliceRequest{CPUMHz: 10000, MemoryMB: 1, DiskMB: 1, BandwidthMbps: 1}); err == nil {
		t.Fatal("impossible resize accepted")
	}
	if r.Req.CPUMHz != 1024 {
		t.Fatal("failed resize mutated reservation")
	}
}

func TestTransientMemoryAccounting(t *testing.T) {
	_, h := newSeattle(t, nil)
	if err := h.UseMemory(2048); err != nil {
		t.Fatal(err)
	}
	if err := h.UseMemory(1); err == nil {
		t.Fatal("overcommitted transient memory")
	}
	h.FreeMemory(2048)
	if h.MemoryFreeMB() != 2048 {
		t.Fatalf("free = %d", h.MemoryFreeMB())
	}
}

func TestDiskSpaceAccounting(t *testing.T) {
	_, h := newSeattle(t, nil)
	if err := h.UseDisk(h.Spec.DiskMB); err != nil {
		t.Fatal(err)
	}
	if err := h.UseDisk(1); err == nil {
		t.Fatal("disk overcommit accepted")
	}
	h.FreeDisk(h.Spec.DiskMB)
}

func TestCPUMonitorProducesSharesSummingToOne(t *testing.T) {
	k, h := newSeattle(t, sched.NewFairShare())
	h.Spawn("a", 1).Spin()
	h.Spawn("b", 2).Spin()
	mon := NewCPUMonitor(h, sim.Second, []int{1, 2}, map[int]string{1: "a", 2: "b"})
	k.RunUntil(sim.Time(10 * sim.Second))
	mon.Stop()
	sa, sb := mon.Series(1), mon.Series(2)
	if sa.Len() != 10 || sb.Len() != 10 {
		t.Fatalf("samples = %d, %d, want 10 each", sa.Len(), sb.Len())
	}
	for i, pa := range sa.Points() {
		pb := sb.Points()[i]
		if math.Abs(pa.V+pb.V-1.0) > 0.01 {
			t.Fatalf("sample %d: shares %.3f + %.3f ≠ 1", i, pa.V, pb.V)
		}
	}
}

func TestCPUMonitorSeriesSetOrderAndNames(t *testing.T) {
	k, h := newSeattle(t, nil)
	h.Spawn("x", 3).Spin()
	mon := NewCPUMonitor(h, sim.Second, []int{3, 9}, map[int]string{3: "web"})
	k.RunUntil(sim.Time(2 * sim.Second))
	mon.Stop()
	ss := mon.SeriesSet()
	if len(ss.Series) != 2 || ss.Series[0].Name != "web" || !strings.HasPrefix(ss.Series[1].Name, "uid-") {
		t.Fatalf("series set = %v", []string{ss.Series[0].Name, ss.Series[1].Name})
	}
}

func TestMHzOfConversion(t *testing.T) {
	k, h := newSeattle(t, nil)
	mon := NewCPUMonitor(h, sim.Second, nil, nil)
	_ = k
	if got := mon.MHzOf(0.5); math.Abs(got-1300) > 1e-9 {
		t.Fatalf("MHzOf(0.5) = %v, want 1300 on seattle", got)
	}
}
