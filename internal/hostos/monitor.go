package hostos

import (
	"sort"
	"strconv"
	"time"

	"repro/internal/cycles"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// CPUMonitor samples per-userid CPU shares at a fixed period, producing
// the time series plotted in Figure 5. A share is the fraction of the
// host's total cycle capacity a userid consumed during the sample window.
type CPUMonitor struct {
	h       *Host
	period  sim.Duration
	uids    []int
	series  map[int]*metrics.TimeSeries
	last    map[int]float64
	lastT   sim.Time
	ticker  *sim.Ticker
	stopped bool
}

// NewCPUMonitor starts sampling the given userids every period. Names maps
// each uid to a series label ("web", "comp", "log"); missing names default
// to "uid-N".
func NewCPUMonitor(h *Host, period sim.Duration, uids []int, names map[int]string) *CPUMonitor {
	m := &CPUMonitor{
		h:      h,
		period: period,
		uids:   append([]int(nil), uids...),
		series: make(map[int]*metrics.TimeSeries),
		last:   make(map[int]float64),
		lastT:  h.k.Now(),
	}
	sort.Ints(m.uids)
	for _, uid := range m.uids {
		name := names[uid]
		if name == "" {
			name = "uid-" + strconv.Itoa(uid)
		}
		m.series[uid] = metrics.NewTimeSeries(name)
	}
	start := h.CPUCycles()
	for _, uid := range m.uids {
		m.last[uid] = start[uid]
	}
	m.ticker = h.k.Every(period, m.sample)
	return m
}

func (m *CPUMonitor) sample() {
	now := m.h.k.Now()
	dt := now.Sub(m.lastT)
	if dt <= 0 {
		return
	}
	capacity := float64(m.h.Spec.Clock) * dt.Seconds()
	usage := m.h.CPUCycles()
	for _, uid := range m.uids {
		delta := usage[uid] - m.last[uid]
		m.last[uid] = usage[uid]
		share := delta / capacity
		m.series[uid].Record(time.Duration(now), share)
	}
	m.lastT = now
}

// Stop ends sampling. It is idempotent: stopping an already-stopped
// monitor is a no-op.
func (m *CPUMonitor) Stop() {
	if m.stopped {
		return
	}
	m.stopped = true
	m.ticker.Stop()
}

// Stopped reports whether the monitor has been stopped.
func (m *CPUMonitor) Stopped() bool { return m.stopped }

// Detach removes uid from the sampled set, so a torn-down service stops
// producing samples and its series no longer appears in SeriesSet —
// consumers rendering live gauges stop exporting stale values. The
// recorded history stays readable through the series the caller already
// holds. Detach reports whether the uid was monitored.
func (m *CPUMonitor) Detach(uid int) bool {
	if _, ok := m.series[uid]; !ok {
		return false
	}
	for i, u := range m.uids {
		if u == uid {
			m.uids = append(m.uids[:i], m.uids[i+1:]...)
			break
		}
	}
	delete(m.series, uid)
	delete(m.last, uid)
	return true
}

// Series returns the share series for uid, or nil if unmonitored.
func (m *CPUMonitor) Series(uid int) *metrics.TimeSeries { return m.series[uid] }

// SeriesSet returns all monitored series in uid order, for rendering.
func (m *CPUMonitor) SeriesSet() *metrics.SeriesSet {
	var ss metrics.SeriesSet
	for _, uid := range m.uids {
		ss.Add(m.series[uid])
	}
	return &ss
}

// MHzOf converts a share fraction into MHz-equivalents on this host.
func (m *CPUMonitor) MHzOf(share float64) float64 {
	return share * float64(m.h.Spec.Clock) / float64(cycles.MHz)
}
