// Package sched implements the CPU scheduling policies contrasted in the
// paper's Figure 5: the per-process fair sharing of an unmodified Linux
// host ("FairShare") and SODA's coarse-grain proportional-share scheduler
// that enforces per-userid CPU shares ("Proportional").
//
// In SODA every process inside one virtual service node bears the same
// userid (§4.2), so enforcing shares per userid is exactly enforcing
// shares per virtual service node.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// FlowMeta is attached to every CPU flow submitted to the host so
// schedulers can see which userid (virtual service node) owns the work.
type FlowMeta struct {
	// UID is the host userid the flow's process runs under.
	UID int
	// PID identifies the owning process, for traces.
	PID int
	// Guest marks work executed inside a UML guest.
	Guest bool
}

// MetaOf extracts the scheduler metadata from a flow, panicking on flows
// submitted without it — that is a wiring bug, not a runtime condition.
func MetaOf(f *sim.Flow) *FlowMeta {
	m, ok := f.Meta.(*FlowMeta)
	if !ok {
		panic(fmt.Sprintf("sched: flow %q submitted without FlowMeta", f.Label))
	}
	return m
}

// Scheduler turns the host's runnable flow set into per-flow CPU rates.
// Implementations must be deterministic functions of (capacity, flows,
// configured weights).
type Scheduler interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Assign sets the service rate of every flow; the sum must not exceed
	// capacity.
	Assign(capacity float64, flows []*sim.Flow)
	// SetShare configures the CPU share (an arbitrary positive weight,
	// e.g. reserved MHz) for a userid. Policies that ignore shares accept
	// and discard them.
	SetShare(uid int, weight float64)
	// ClearShare removes a userid's configured share.
	ClearShare(uid int)
}

// FairShare models the unmodified Linux host OS: every runnable *process*
// gets an equal share of the CPU, so a virtual service node with more
// runnable processes receives proportionally more CPU — the unfairness
// visible in Figure 5(a).
type FairShare struct{}

// NewFairShare returns the unmodified-Linux policy.
func NewFairShare() *FairShare { return &FairShare{} }

// Name implements Scheduler.
func (*FairShare) Name() string { return "fair-share (unmodified Linux)" }

// Assign implements Scheduler: equal rate per runnable flow.
func (*FairShare) Assign(capacity float64, flows []*sim.Flow) {
	sim.EqualShare(capacity, flows)
}

// SetShare implements Scheduler; FairShare has no per-userid state.
func (*FairShare) SetShare(int, float64) {}

// ClearShare implements Scheduler.
func (*FairShare) ClearShare(int) {}

// Proportional is SODA's coarse-grain proportional-share CPU scheduler:
// capacity is divided among *userids* in proportion to their configured
// weights (work-conserving: only userids with runnable work participate),
// then equally among each userid's runnable processes.
type Proportional struct {
	weights map[int]float64
	// DefaultWeight applies to userids that never called SetShare
	// (e.g. host-OS system processes).
	DefaultWeight float64
}

// NewProportional returns the SODA scheduler with no configured shares and
// a default weight of 1.
func NewProportional() *Proportional {
	return &Proportional{weights: make(map[int]float64), DefaultWeight: 1}
}

// Name implements Scheduler.
func (*Proportional) Name() string { return "proportional-share (SODA)" }

// SetShare implements Scheduler.
func (p *Proportional) SetShare(uid int, weight float64) {
	if weight <= 0 {
		panic(fmt.Sprintf("sched: non-positive share %v for uid %d", weight, uid))
	}
	p.weights[uid] = weight
}

// ClearShare implements Scheduler.
func (p *Proportional) ClearShare(uid int) { delete(p.weights, uid) }

// Share returns the configured weight for uid and whether one is set.
func (p *Proportional) Share(uid int) (float64, bool) {
	w, ok := p.weights[uid]
	return w, ok
}

// Assign implements Scheduler.
func (p *Proportional) Assign(capacity float64, flows []*sim.Flow) {
	if len(flows) == 0 {
		return
	}
	byUID := make(map[int][]*sim.Flow)
	for _, f := range flows {
		uid := MetaOf(f).UID
		byUID[uid] = append(byUID[uid], f)
	}
	uids := make([]int, 0, len(byUID))
	var totalWeight float64
	for uid := range byUID {
		uids = append(uids, uid)
		totalWeight += p.weightOf(uid)
	}
	sort.Ints(uids) // determinism
	for _, uid := range uids {
		group := byUID[uid]
		groupRate := capacity * p.weightOf(uid) / totalWeight
		perFlow := groupRate / float64(len(group))
		for _, f := range group {
			f.SetRate(perFlow)
		}
	}
}

func (p *Proportional) weightOf(uid int) float64 {
	if w, ok := p.weights[uid]; ok {
		return w
	}
	if p.DefaultWeight > 0 {
		return p.DefaultWeight
	}
	return 1
}

// Policy adapts a Scheduler to the fluid engine's RatePolicy.
func Policy(s Scheduler) sim.RatePolicy {
	return func(capacity float64, flows []*sim.Flow) {
		s.Assign(capacity, flows)
	}
}
