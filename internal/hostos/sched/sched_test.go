package sched

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func flowsWithUIDs(uids ...int) []*sim.Flow {
	k := sim.NewKernel()
	s := sim.NewFluidServer(k, "t", 1e9, sim.EqualShare)
	var out []*sim.Flow
	for i, uid := range uids {
		f := s.Submit("f", 1, 1e6, &FlowMeta{UID: uid, PID: i + 1}, nil)
		out = append(out, f)
	}
	return out
}

func TestFairShareEqualPerProcess(t *testing.T) {
	flows := flowsWithUIDs(100, 100, 100, 200)
	NewFairShare().Assign(400, flows)
	for _, f := range flows {
		if f.Rate() != 100 {
			t.Fatalf("rate = %v, want 100", f.Rate())
		}
	}
}

func TestProportionalEnforcesPerUIDShares(t *testing.T) {
	// uid 100 has 3 runnable processes, uid 200 has 1; equal weights mean
	// each *uid* gets half the CPU regardless of process count.
	flows := flowsWithUIDs(100, 100, 100, 200)
	p := NewProportional()
	p.SetShare(100, 512)
	p.SetShare(200, 512)
	p.Assign(600, flows)
	var uid100, uid200 float64
	for _, f := range flows {
		switch MetaOf(f).UID {
		case 100:
			uid100 += f.Rate()
		case 200:
			uid200 += f.Rate()
		}
	}
	if math.Abs(uid100-300) > 1e-9 || math.Abs(uid200-300) > 1e-9 {
		t.Fatalf("group rates = %v, %v, want 300 each", uid100, uid200)
	}
	// Within uid 100 each of the 3 processes gets 100.
	if flows[0].Rate() != 100 {
		t.Fatalf("per-process rate = %v, want 100", flows[0].Rate())
	}
}

func TestProportionalWeightedShares(t *testing.T) {
	flows := flowsWithUIDs(1, 2)
	p := NewProportional()
	p.SetShare(1, 1024) // seattle-style node: capacity 2
	p.SetShare(2, 512)  // capacity 1
	p.Assign(900, flows)
	if math.Abs(flows[0].Rate()-600) > 1e-9 || math.Abs(flows[1].Rate()-300) > 1e-9 {
		t.Fatalf("rates = %v, %v, want 600/300", flows[0].Rate(), flows[1].Rate())
	}
}

func TestProportionalWorkConserving(t *testing.T) {
	// Only uid 1 has runnable work: it gets the whole CPU even though its
	// configured share is small.
	flows := flowsWithUIDs(1, 1)
	p := NewProportional()
	p.SetShare(1, 10)
	p.SetShare(2, 990) // absent uid
	p.Assign(1000, flows)
	var total float64
	for _, f := range flows {
		total += f.Rate()
	}
	if math.Abs(total-1000) > 1e-9 {
		t.Fatalf("total rate = %v, want full capacity 1000", total)
	}
}

func TestProportionalDefaultWeightForUnregisteredUIDs(t *testing.T) {
	flows := flowsWithUIDs(7, 8)
	p := NewProportional() // no SetShare calls: both default to weight 1
	p.Assign(100, flows)
	if flows[0].Rate() != 50 || flows[1].Rate() != 50 {
		t.Fatalf("rates = %v, %v, want 50/50", flows[0].Rate(), flows[1].Rate())
	}
}

func TestProportionalClearShare(t *testing.T) {
	p := NewProportional()
	p.SetShare(1, 100)
	if _, ok := p.Share(1); !ok {
		t.Fatal("share not set")
	}
	p.ClearShare(1)
	if _, ok := p.Share(1); ok {
		t.Fatal("share not cleared")
	}
}

func TestProportionalRejectsNonPositiveShare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive share")
		}
	}()
	NewProportional().SetShare(1, 0)
}

func TestMetaOfPanicsWithoutMeta(t *testing.T) {
	k := sim.NewKernel()
	s := sim.NewFluidServer(k, "t", 1, sim.EqualShare)
	f := s.Submit("bare", 1, 1, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for missing meta")
		}
	}()
	MetaOf(f)
}

func TestSchedulerNames(t *testing.T) {
	if NewFairShare().Name() == NewProportional().Name() {
		t.Fatal("policies share a name")
	}
}

func TestPolicyAdapterDelegates(t *testing.T) {
	flows := flowsWithUIDs(1, 1)
	Policy(NewFairShare())(100, flows)
	if flows[0].Rate() != 50 {
		t.Fatalf("adapter rate = %v", flows[0].Rate())
	}
}

func TestProportionalDeterministicAcrossMapOrder(t *testing.T) {
	// Many uids: repeated assignment must produce identical rates even
	// though map iteration order varies.
	for trial := 0; trial < 10; trial++ {
		flows := flowsWithUIDs(5, 3, 9, 1, 7, 3, 5)
		p := NewProportional()
		for _, uid := range []int{1, 3, 5, 7, 9} {
			p.SetShare(uid, float64(uid*100))
		}
		p.Assign(2500, flows)
		var total float64
		for _, f := range flows {
			total += f.Rate()
		}
		if math.Abs(total-2500) > 1e-6 {
			t.Fatalf("trial %d: total = %v", trial, total)
		}
	}
}
