// Package hostos models a HUP host: a physical server with CPU, memory,
// disk, and NIC resources, a process table, and a pluggable CPU scheduler.
// The SODA Daemon (internal/soda) reserves "slices" of a host to create
// virtual service nodes; the UML guest OS (internal/uml) runs its guest
// processes as host processes that pay the tracing-thread syscall tax.
package hostos

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cycles"
	"repro/internal/hostos/sched"
	"repro/internal/sim"
)

// Spec describes a host's hardware, mirroring the paper's testbed
// machines (§4: seattle, a 2.6 GHz Xeon with 2 GB RAM; tacoma, a 1.8 GHz
// P4 with 768 MB RAM; both on a 100 Mbps LAN).
type Spec struct {
	// Name is the host's code name.
	Name string
	// Clock is the CPU clock rate.
	Clock cycles.Hz
	// MemoryMB is installed RAM in MiB.
	MemoryMB int
	// DiskMB is disk capacity in MiB.
	DiskMB int
	// DiskWriteMBps is sustained sequential disk write bandwidth in MiB/s.
	DiskWriteMBps float64
	// DiskReadMBps is sustained sequential disk read bandwidth in MiB/s.
	DiskReadMBps float64
	// DiskSeekMs is the average positioning time a random read pays
	// before data transfer begins (2003-era disks: 5–9 ms).
	DiskSeekMs float64
	// NICMbps is network interface bandwidth in megabits per second.
	NICMbps float64
}

// Validate reports the first problem with the spec, or nil.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return errors.New("hostos: spec needs a name")
	case s.Clock <= 0:
		return fmt.Errorf("hostos: %s: non-positive clock", s.Name)
	case s.MemoryMB <= 0:
		return fmt.Errorf("hostos: %s: non-positive memory", s.Name)
	case s.DiskMB <= 0:
		return fmt.Errorf("hostos: %s: non-positive disk", s.Name)
	case s.DiskWriteMBps <= 0 || s.DiskReadMBps <= 0:
		return fmt.Errorf("hostos: %s: non-positive disk bandwidth", s.Name)
	case s.NICMbps <= 0:
		return fmt.Errorf("hostos: %s: non-positive NIC bandwidth", s.Name)
	}
	return nil
}

// Seattle returns the spec of the paper's first testbed host.
func Seattle() Spec {
	return Spec{
		Name:          "seattle",
		Clock:         2600 * cycles.MHz,
		MemoryMB:      2048,
		DiskMB:        60000,
		DiskWriteMBps: 45,
		DiskReadMBps:  55,
		DiskSeekMs:    6,
		NICMbps:       100,
	}
}

// Tacoma returns the spec of the paper's second testbed host.
func Tacoma() Spec {
	return Spec{
		Name:          "tacoma",
		Clock:         1800 * cycles.MHz,
		MemoryMB:      768,
		DiskMB:        40000,
		DiskWriteMBps: 25,
		DiskReadMBps:  35,
		DiskSeekMs:    6,
		NICMbps:       100,
	}
}

// Host is a running HUP host.
type Host struct {
	Spec Spec

	k         *sim.Kernel
	scheduler sched.Scheduler
	cpu       *sim.FluidServer
	diskW     *sim.FluidServer
	diskR     *sim.FluidServer

	procs   map[int]*Process
	nextPID int

	memUsedMB   int
	diskUsedMB  int
	memReserved int
	reservs     map[int]*Reservation
	nextResID   int

	// cpuFinished accumulates cycles completed per uid by flows that have
	// drained; live flows are accounted via Flow.Served at sample time.
	cpuFinished map[int]float64
	liveFlows   map[*sim.Flow]int
}

// New boots a host with the given spec and CPU scheduler. A nil scheduler
// defaults to the unmodified-Linux FairShare policy.
func New(k *sim.Kernel, spec Spec, scheduler sched.Scheduler) (*Host, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if scheduler == nil {
		scheduler = sched.NewFairShare()
	}
	h := &Host{
		Spec:        spec,
		k:           k,
		scheduler:   scheduler,
		procs:       make(map[int]*Process),
		nextPID:     1,
		reservs:     make(map[int]*Reservation),
		nextResID:   1,
		cpuFinished: make(map[int]float64),
		liveFlows:   make(map[*sim.Flow]int),
	}
	h.cpu = sim.NewFluidServer(k, spec.Name+"/cpu", float64(spec.Clock), sched.Policy(scheduler))
	h.diskW = sim.NewFluidServer(k, spec.Name+"/disk-write", spec.DiskWriteMBps*1024*1024, sim.EqualShare)
	h.diskR = sim.NewFluidServer(k, spec.Name+"/disk-read", spec.DiskReadMBps*1024*1024, sim.EqualShare)
	return h, nil
}

// MustNew is New, panicking on error; for tests and fixed testbeds.
func MustNew(k *sim.Kernel, spec Spec, scheduler sched.Scheduler) *Host {
	h, err := New(k, spec, scheduler)
	if err != nil {
		panic(err)
	}
	return h
}

// Kernel returns the simulation kernel the host runs on.
func (h *Host) Kernel() *sim.Kernel { return h.k }

// Scheduler returns the active CPU scheduler.
func (h *Host) Scheduler() sched.Scheduler { return h.scheduler }

// SetScheduler swaps the CPU scheduling policy at the current virtual
// instant — the mechanism behind the Figure 5(a)/(b) comparison.
func (h *Host) SetScheduler(s sched.Scheduler) {
	if s == nil {
		panic("hostos: nil scheduler")
	}
	h.scheduler = s
	h.cpu.SetPolicy(sched.Policy(s))
}

// Clock returns the host CPU clock rate.
func (h *Host) Clock() cycles.Hz { return h.Spec.Clock }

// CPU exposes the CPU fluid server (for utilisation queries in tests).
func (h *Host) CPU() *sim.FluidServer { return h.cpu }

// --- Processes -----------------------------------------------------------

// Process is an entry in the host's process table. Guest processes of a
// UML are ordinary host processes sharing one userid (§4.2: "Within one
// virtual service node, all processes bear the same user id").
type Process struct {
	PID  int
	UID  int
	Name string

	h      *Host
	dead   bool
	flows  map[*sim.Flow]struct{}
	onKill []func()
}

// Spawn creates a process owned by uid.
func (h *Host) Spawn(name string, uid int) *Process {
	p := &Process{
		PID:   h.nextPID,
		UID:   uid,
		Name:  name,
		h:     h,
		flows: make(map[*sim.Flow]struct{}),
	}
	h.nextPID++
	h.procs[p.PID] = p
	return p
}

// Processes returns the live process table sorted by PID.
func (h *Host) Processes() []*Process {
	out := make([]*Process, 0, len(h.procs))
	for _, p := range h.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// ProcessesByUID returns live processes owned by uid, sorted by PID.
func (h *Host) ProcessesByUID(uid int) []*Process {
	var out []*Process
	for _, p := range h.Processes() {
		if p.UID == uid {
			out = append(out, p)
		}
	}
	return out
}

// Kill terminates a process: its in-flight CPU and disk flows are
// cancelled and it leaves the process table. Killing an already-dead
// process is a no-op (matching kill(2) semantics loosely).
func (h *Host) Kill(p *Process) {
	if p.dead {
		return
	}
	p.dead = true
	for f := range p.flows {
		h.settleFlowInto(f)
		h.cpu.Cancel(f)
		h.diskW.Cancel(f)
		h.diskR.Cancel(f)
	}
	p.flows = nil
	delete(h.procs, p.PID)
	for _, fn := range p.onKill {
		fn()
	}
}

// KillUID terminates every process owned by uid — the blast radius of a
// guest-OS crash is exactly one userid, which is the isolation property
// the honeypot experiment demonstrates.
func (h *Host) KillUID(uid int) int {
	var victims []*Process
	for _, p := range h.procs {
		if p.UID == uid {
			victims = append(victims, p)
		}
	}
	for _, p := range victims {
		h.Kill(p)
	}
	return len(victims)
}

// Alive reports whether the process is still in the process table.
func (p *Process) Alive() bool { return !p.dead }

// OnKill registers a callback invoked when the process is killed.
func (p *Process) OnKill(fn func()) { p.onKill = append(p.onKill, fn) }

// settleFlowInto folds a live CPU flow's partial service into the per-uid
// account; disk flows are not tracked and pass through unchanged.
func (h *Host) settleFlowInto(f *sim.Flow) {
	if uid, ok := h.liveFlows[f]; ok {
		h.cpuFinished[uid] += f.Served()
		delete(h.liveFlows, f)
	}
}

// Exec schedules a CPU burst of c cycles for the process. onDone fires
// when the burst completes. Exec on a dead process is a no-op returning
// nil (the process was killed between scheduling decisions).
func (p *Process) Exec(c cycles.Cycles, onDone func()) *sim.Flow {
	if p.dead {
		return nil
	}
	h := p.h
	var f *sim.Flow
	f = h.cpu.Submit(p.Name, 1, float64(c), &sched.FlowMeta{UID: p.UID, PID: p.PID}, func() {
		delete(p.flows, f)
		h.cpuFinished[p.UID] += float64(c)
		delete(h.liveFlows, f)
		if onDone != nil {
			onDone()
		}
	})
	p.flows[f] = struct{}{}
	h.liveFlows[f] = p.UID
	return f
}

// Spin starts an effectively infinite CPU burst — the comp workload's
// "infinite loop of dummy arithmetic operations". The flow persists until
// the process is killed.
func (p *Process) Spin() *sim.Flow {
	return p.Exec(cycles.Cycles(1<<62), nil)
}

// Syscall executes one system call: a CPU burst whose cost comes from the
// cycle model — the host-OS path when guest is false, the UML
// tracing-thread path when guest is true.
func (p *Process) Syscall(s cycles.Syscall, guest bool, onDone func()) *sim.Flow {
	c := cycles.HostCost(s)
	if guest {
		c = cycles.UMLCost(s)
	}
	return p.Exec(c, onDone)
}

// WriteDisk schedules a disk write of n bytes (the log workload's
// "logging via continuous disk writes"). Disk writes also consume a small
// amount of CPU per byte for the buffer-cache copy.
func (p *Process) WriteDisk(n int64, onDone func()) *sim.Flow {
	if p.dead {
		return nil
	}
	h := p.h
	// CPU cost of the write path: ~0.5 cycles/byte copy + write syscall.
	cpuCost := cycles.Cycles(n/2) + cycles.HostCost(cycles.Write)
	var f *sim.Flow
	f = h.diskW.Submit(p.Name+"/write", 1, float64(n), &sched.FlowMeta{UID: p.UID, PID: p.PID}, func() {
		delete(p.flows, f)
		p.Exec(cpuCost, onDone)
	})
	p.flows[f] = struct{}{}
	return f
}

// ReadDisk schedules a random disk read of n bytes: a seek (the head
// positioning time of Spec.DiskSeekMs), then the transfer through the
// shared read channel, then a small CPU cost for the copy out of the
// buffer cache. Sequential streaming reads should use ReadDiskSequential.
func (p *Process) ReadDisk(n int64, onDone func()) *sim.Flow {
	return p.readDisk(n, true, onDone)
}

// ReadDiskSequential is ReadDisk without the positioning penalty, for
// streaming workloads (mounting a root file system image).
func (p *Process) ReadDiskSequential(n int64, onDone func()) *sim.Flow {
	return p.readDisk(n, false, onDone)
}

func (p *Process) readDisk(n int64, seek bool, onDone func()) *sim.Flow {
	if p.dead {
		return nil
	}
	h := p.h
	cpuCost := cycles.Cycles(n/2) + cycles.HostCost(cycles.Read)
	submit := func() {
		if p.dead {
			return
		}
		var f *sim.Flow
		f = h.diskR.Submit(p.Name+"/read", 1, float64(n), &sched.FlowMeta{UID: p.UID, PID: p.PID}, func() {
			delete(p.flows, f)
			p.Exec(cpuCost, onDone)
		})
		p.flows[f] = struct{}{}
	}
	if seek && h.Spec.DiskSeekMs > 0 {
		h.k.After(sim.Duration(h.Spec.DiskSeekMs*float64(sim.Millisecond)), submit)
		return nil
	}
	submit()
	return nil
}

// --- CPU accounting (Figure 5 instrumentation) ---------------------------

// CPUCycles returns the cumulative cycles consumed per userid up to the
// current virtual time, including partially served live flows.
func (h *Host) CPUCycles() map[int]float64 {
	out := make(map[int]float64, len(h.cpuFinished))
	for uid, v := range h.cpuFinished {
		out[uid] = v
	}
	for f, uid := range h.liveFlows {
		out[uid] += f.Served()
	}
	return out
}

// CPUCyclesFor returns cumulative cycles consumed by one userid.
func (h *Host) CPUCyclesFor(uid int) float64 {
	return h.CPUCycles()[uid]
}
