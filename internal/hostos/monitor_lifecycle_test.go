package hostos

// Lifecycle tests for CPUMonitor: Stop must be idempotent, and Detach
// must remove a torn-down service's uid from sampling and from
// SeriesSet so stale gauges stop being exported.

import (
	"testing"

	"repro/internal/hostos/sched"
	"repro/internal/sim"
)

func TestCPUMonitorStopIdempotent(t *testing.T) {
	k, h := newSeattle(t, sched.NewFairShare())
	h.Spawn("a", 1).Spin()
	mon := NewCPUMonitor(h, sim.Second, []int{1}, nil)
	k.RunUntil(sim.Time(3 * sim.Second))
	if mon.Stopped() {
		t.Fatal("monitor reports stopped while running")
	}
	mon.Stop()
	if !mon.Stopped() {
		t.Fatal("monitor not stopped after Stop")
	}
	mon.Stop() // second Stop must not panic or double-release the ticker
	mon.Stop()
	n := mon.Series(1).Len()
	k.RunUntil(sim.Time(10 * sim.Second))
	if got := mon.Series(1).Len(); got != n {
		t.Fatalf("samples after Stop: %d -> %d", n, got)
	}
}

func TestCPUMonitorDetachStopsSampling(t *testing.T) {
	k, h := newSeattle(t, sched.NewFairShare())
	h.Spawn("a", 1).Spin()
	h.Spawn("b", 2).Spin()
	mon := NewCPUMonitor(h, sim.Second, []int{1, 2}, map[int]string{1: "a", 2: "b"})
	k.RunUntil(sim.Time(5 * sim.Second))

	// Hold the series like a renderer would, then tear uid 2 down.
	detached := mon.Series(2)
	frozen := detached.Len()
	if !mon.Detach(2) {
		t.Fatal("Detach(2) = false for a monitored uid")
	}
	if mon.Detach(2) {
		t.Fatal("Detach(2) = true twice")
	}
	if mon.Detach(99) {
		t.Fatal("Detach of unmonitored uid = true")
	}
	if mon.Series(2) != nil {
		t.Fatal("Series(2) still resolves after Detach")
	}

	k.RunUntil(sim.Time(10 * sim.Second))
	// The detached series froze; the survivor kept sampling.
	if got := detached.Len(); got != frozen {
		t.Fatalf("detached series grew: %d -> %d", frozen, got)
	}
	if got := mon.Series(1).Len(); got != 10 {
		t.Fatalf("survivor samples = %d, want 10", got)
	}
	// SeriesSet no longer exports the torn-down service.
	ss := mon.SeriesSet()
	if len(ss.Series) != 1 || ss.Series[0].Name != "a" {
		names := make([]string, len(ss.Series))
		for i, s := range ss.Series {
			names[i] = s.Name
		}
		t.Fatalf("SeriesSet after Detach = %v, want [a]", names)
	}
	mon.Stop()
}
