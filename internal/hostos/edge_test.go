package hostos

import (
	"math"
	"testing"

	"repro/internal/cycles"
	"repro/internal/hostos/sched"
	"repro/internal/sim"
)

// Edge-case tests for the host model's accounting invariants.

func TestFreeMemoryPanicsOnUnderflow(t *testing.T) {
	_, h := newSeattle(t, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic freeing unowned memory")
		}
	}()
	h.FreeMemory(1)
}

func TestFreeDiskPanicsOnUnderflow(t *testing.T) {
	_, h := newSeattle(t, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic freeing unowned disk")
		}
	}()
	h.FreeDisk(1)
}

func TestUseMemoryRejectsNegative(t *testing.T) {
	_, h := newSeattle(t, nil)
	if err := h.UseMemory(-1); err == nil {
		t.Fatal("negative memory accepted")
	}
	if err := h.UseDisk(-1); err == nil {
		t.Fatal("negative disk accepted")
	}
}

func TestRandomReadPaysSeek(t *testing.T) {
	k, h := newSeattle(t, nil)
	p := h.Spawn("reader", 1)
	var random, sequential sim.Duration
	start := k.Now()
	p.ReadDisk(1024, func() { random = k.Now().Sub(start) })
	k.Run()
	start2 := k.Now()
	p.ReadDiskSequential(1024, func() { sequential = k.Now().Sub(start2) })
	k.Run()
	seek := sim.Duration(h.Spec.DiskSeekMs * float64(sim.Millisecond))
	if random-sequential < seek {
		t.Fatalf("random read %v not ≥ sequential %v + seek %v", random, sequential, seek)
	}
}

func TestReadDiskOnDeadProcessNoop(t *testing.T) {
	k, h := newSeattle(t, nil)
	p := h.Spawn("dead", 1)
	h.Kill(p)
	p.ReadDisk(1024, func() { t.Error("dead read completed") })
	p.ReadDiskSequential(1024, func() { t.Error("dead sequential read completed") })
	p.WriteDisk(1024, func() { t.Error("dead write completed") })
	k.Run()
}

func TestKillDuringSeekDropsTheRead(t *testing.T) {
	k, h := newSeattle(t, nil)
	p := h.Spawn("reader", 1)
	p.ReadDisk(1<<20, func() { t.Error("read completed after kill") })
	// Kill mid-seek (seek is 6 ms).
	k.After(sim.Millisecond, func() { h.Kill(p) })
	k.Run()
}

func TestCanReserveChecksEveryDimension(t *testing.T) {
	_, h := newSeattle(t, nil)
	base := SliceRequest{CPUMHz: 100, MemoryMB: 100, DiskMB: 100, BandwidthMbps: 10}
	if !h.CanReserve(base) {
		t.Fatal("small request refused")
	}
	for name, req := range map[string]SliceRequest{
		"cpu":  {CPUMHz: 9999, MemoryMB: 100, DiskMB: 100, BandwidthMbps: 10},
		"mem":  {CPUMHz: 100, MemoryMB: 99999, DiskMB: 100, BandwidthMbps: 10},
		"disk": {CPUMHz: 100, MemoryMB: 100, DiskMB: 9999999, BandwidthMbps: 10},
		"bw":   {CPUMHz: 100, MemoryMB: 100, DiskMB: 100, BandwidthMbps: 999},
	} {
		if h.CanReserve(req) {
			t.Errorf("%s-oversized request accepted", name)
		}
	}
}

func TestSliceRequestScale(t *testing.T) {
	s := SliceRequest{CPUMHz: 100, MemoryMB: 10, DiskMB: 20, BandwidthMbps: 1.5}.Scale(3)
	if s.CPUMHz != 300 || s.MemoryMB != 30 || s.DiskMB != 60 || s.BandwidthMbps != 4.5 {
		t.Fatalf("scaled = %+v", s)
	}
}

func TestResizeOfReleasedReservationFails(t *testing.T) {
	_, h := newSeattle(t, nil)
	r, err := h.Reserve(1, SliceRequest{CPUMHz: 100, MemoryMB: 100, DiskMB: 100, BandwidthMbps: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Release()
	if err := r.Resize(SliceRequest{CPUMHz: 200, MemoryMB: 100, DiskMB: 100, BandwidthMbps: 1}); err == nil {
		t.Fatal("resize of released reservation accepted")
	}
}

func TestReleaseKeepsSchedulerShareForRemainingReservations(t *testing.T) {
	// Two reservations for one uid (a resize window): releasing one must
	// leave the other's share registered.
	prop := newSeattle2Prop(t)
	h := prop.h
	r1, err := h.Reserve(7, SliceRequest{CPUMHz: 100, MemoryMB: 50, DiskMB: 50, BandwidthMbps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Reserve(7, SliceRequest{CPUMHz: 200, MemoryMB: 50, DiskMB: 50, BandwidthMbps: 1}); err != nil {
		t.Fatal(err)
	}
	r1.Release()
	if w, ok := prop.sched.Share(7); !ok || w != 200 {
		t.Fatalf("share after partial release = %v,%v, want 200", w, ok)
	}
}

type propFixture struct {
	h     *Host
	sched interface{ Share(int) (float64, bool) }
}

func newSeattle2Prop(t *testing.T) propFixture {
	t.Helper()
	k := sim.NewKernel()
	s := sched.NewProportional()
	h, err := New(k, Seattle(), s)
	if err != nil {
		t.Fatal(err)
	}
	return propFixture{h: h, sched: s}
}

func TestCPUCyclesForUnknownUIDIsZero(t *testing.T) {
	_, h := newSeattle(t, nil)
	if h.CPUCyclesFor(12345) != 0 {
		t.Fatal("unknown uid has cycles")
	}
}

func TestSyscallSequenceAccumulates(t *testing.T) {
	k, h := newSeattle(t, nil)
	p := h.Spawn("seq", 1)
	var done sim.Time
	p.Syscall(cycles.Open, false, func() {
		p.Syscall(cycles.Read, false, func() {
			p.Syscall(cycles.Close, false, func() { done = k.Now() })
		})
	})
	k.Run()
	want := (cycles.HostCost(cycles.Open) + cycles.HostCost(cycles.Read) + cycles.HostCost(cycles.Close)).Duration(h.Spec.Clock)
	if math.Abs(float64(done.Duration()-want)) > float64(want)/100 {
		t.Fatalf("sequence took %v, want %v", done.Duration(), want)
	}
}
