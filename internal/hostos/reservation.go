package hostos

import (
	"fmt"
	"sort"

	"repro/internal/cycles"
)

// SliceRequest describes the resources one virtual service node needs from
// a host — the per-machine configuration M of the paper's <n, M>
// requirement (Table 1), possibly multiplied when several Ms map to one
// node.
type SliceRequest struct {
	// CPUMHz is the reserved CPU rate in MHz-equivalents. The SODA Master
	// inflates this by the slow-down factor before reserving (§3.2).
	CPUMHz int
	// MemoryMB is reserved RAM in MiB (guest OS + service working set).
	MemoryMB int
	// DiskMB is reserved disk space in MiB (root file system + data).
	DiskMB int
	// BandwidthMbps is the outbound bandwidth share enforced by the
	// host-OS traffic shaper.
	BandwidthMbps float64
}

// Validate reports the first problem with the request, or nil.
func (r SliceRequest) Validate() error {
	switch {
	case r.CPUMHz <= 0:
		return fmt.Errorf("hostos: slice with non-positive CPU %dMHz", r.CPUMHz)
	case r.MemoryMB <= 0:
		return fmt.Errorf("hostos: slice with non-positive memory %dMB", r.MemoryMB)
	case r.DiskMB <= 0:
		return fmt.Errorf("hostos: slice with non-positive disk %dMB", r.DiskMB)
	case r.BandwidthMbps <= 0:
		return fmt.Errorf("hostos: slice with non-positive bandwidth %.1fMbps", r.BandwidthMbps)
	}
	return nil
}

// Scale returns the request multiplied by k machine instances.
func (r SliceRequest) Scale(k int) SliceRequest {
	return SliceRequest{
		CPUMHz:        r.CPUMHz * k,
		MemoryMB:      r.MemoryMB * k,
		DiskMB:        r.DiskMB * k,
		BandwidthMbps: r.BandwidthMbps * float64(k),
	}
}

// Reservation is a granted slice of a host: the physical substance of a
// virtual service node. The reservation pins memory and disk space, and
// registers the owning userid's CPU weight with the proportional
// scheduler (if one is active).
type Reservation struct {
	ID  int
	UID int
	Req SliceRequest

	h        *Host
	released bool
}

// Available reports the resources not yet reserved on the host.
func (h *Host) Available() SliceRequest {
	avail := SliceRequest{
		CPUMHz:        int(h.Spec.Clock / cycles.MHz),
		MemoryMB:      h.Spec.MemoryMB,
		DiskMB:        h.Spec.DiskMB,
		BandwidthMbps: h.Spec.NICMbps,
	}
	for _, r := range h.reservs {
		avail.CPUMHz -= r.Req.CPUMHz
		avail.MemoryMB -= r.Req.MemoryMB
		avail.DiskMB -= r.Req.DiskMB
		avail.BandwidthMbps -= r.Req.BandwidthMbps
	}
	return avail
}

// CanReserve reports whether the host currently has room for req.
func (h *Host) CanReserve(req SliceRequest) bool {
	avail := h.Available()
	return req.CPUMHz <= avail.CPUMHz &&
		req.MemoryMB <= avail.MemoryMB &&
		req.DiskMB <= avail.DiskMB &&
		req.BandwidthMbps <= avail.BandwidthMbps
}

// Reserve grants a slice to the given userid, or explains why it cannot.
// The userid's CPU share (weight = reserved MHz) is registered with the
// scheduler so the proportional policy can enforce it.
func (h *Host) Reserve(uid int, req SliceRequest) (*Reservation, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if !h.CanReserve(req) {
		return nil, fmt.Errorf("hostos: %s: insufficient resources for %+v (available %+v)",
			h.Spec.Name, req, h.Available())
	}
	r := &Reservation{ID: h.nextResID, UID: uid, Req: req, h: h}
	h.nextResID++
	h.reservs[r.ID] = r
	h.scheduler.SetShare(uid, float64(req.CPUMHz))
	return r, nil
}

// Release returns the slice's resources to the host. Releasing twice is a
// no-op.
func (r *Reservation) Release() {
	if r.released {
		return
	}
	r.released = true
	delete(r.h.reservs, r.ID)
	// Only clear the scheduler share if no other reservation remains for
	// the same uid (resizing can briefly hold two).
	for _, other := range r.h.reservs {
		if other.UID == r.UID {
			r.h.scheduler.SetShare(r.UID, float64(other.Req.CPUMHz))
			return
		}
	}
	r.h.scheduler.ClearShare(r.UID)
}

// Resize adjusts the reservation in place, failing (and leaving the
// reservation unchanged) if the delta does not fit.
func (r *Reservation) Resize(req SliceRequest) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if r.released {
		return fmt.Errorf("hostos: resize of released reservation %d", r.ID)
	}
	avail := r.h.Available()
	// The host's own reservation returns to the pool during the check.
	avail.CPUMHz += r.Req.CPUMHz
	avail.MemoryMB += r.Req.MemoryMB
	avail.DiskMB += r.Req.DiskMB
	avail.BandwidthMbps += r.Req.BandwidthMbps
	if req.CPUMHz > avail.CPUMHz || req.MemoryMB > avail.MemoryMB ||
		req.DiskMB > avail.DiskMB || req.BandwidthMbps > avail.BandwidthMbps {
		return fmt.Errorf("hostos: %s: cannot resize reservation %d to %+v", r.h.Spec.Name, r.ID, req)
	}
	r.Req = req
	r.h.scheduler.SetShare(r.UID, float64(req.CPUMHz))
	return nil
}

// Reservations returns the host's live reservations sorted by ID.
func (h *Host) Reservations() []*Reservation {
	out := make([]*Reservation, 0, len(h.reservs))
	for _, r := range h.reservs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MemoryFreeMB returns RAM not pinned by reservations or transient use —
// the budget available for mounting a root file system in a RAM disk.
func (h *Host) MemoryFreeMB() int {
	free := h.Spec.MemoryMB - h.memUsedMB
	for _, r := range h.reservs {
		free -= r.Req.MemoryMB
	}
	return free
}

// UseMemory pins n MiB of transient memory (e.g. a RAM-disk mount),
// failing if it does not fit alongside reservations.
func (h *Host) UseMemory(n int) error {
	if n < 0 {
		return fmt.Errorf("hostos: negative memory use %d", n)
	}
	if n > h.MemoryFreeMB() {
		return fmt.Errorf("hostos: %s: %dMB transient memory exceeds %dMB free",
			h.Spec.Name, n, h.MemoryFreeMB())
	}
	h.memUsedMB += n
	return nil
}

// FreeMemory unpins transient memory.
func (h *Host) FreeMemory(n int) {
	if n < 0 || n > h.memUsedMB {
		panic(fmt.Sprintf("hostos: %s: freeing %dMB with %dMB in use", h.Spec.Name, n, h.memUsedMB))
	}
	h.memUsedMB -= n
}

// UseDisk pins n MiB of disk space (e.g. a downloaded image).
func (h *Host) UseDisk(n int) error {
	if n < 0 {
		return fmt.Errorf("hostos: negative disk use %d", n)
	}
	if h.diskUsedMB+n > h.Spec.DiskMB {
		return fmt.Errorf("hostos: %s: disk full (%d used + %d > %d)",
			h.Spec.Name, h.diskUsedMB, n, h.Spec.DiskMB)
	}
	h.diskUsedMB += n
	return nil
}

// FreeDisk unpins disk space.
func (h *Host) FreeDisk(n int) {
	if n < 0 || n > h.diskUsedMB {
		panic(fmt.Sprintf("hostos: %s: freeing %dMB disk with %dMB in use", h.Spec.Name, n, h.diskUsedMB))
	}
	h.diskUsedMB -= n
}
