package hup

import (
	"strings"
	"testing"

	"repro/internal/cycles"
	"repro/internal/sim"
	"repro/internal/soda"
)

func TestLoadConfigFull(t *testing.T) {
	const js = `{
		"seed": 7,
		"latency_us": 250,
		"scheduler": "fair",
		"address_mode": "proxying",
		"hosts": [
			{"name": "alpha", "clock_mhz": 3000, "memory_mb": 4096,
			 "disk_mb": 100000, "disk_write_mbps": 80, "disk_read_mbps": 90,
			 "disk_seek_ms": 4, "nic_mbps": 1000},
			{"name": "beta"}
		]
	}`
	cfg, err := LoadConfig(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Latency != 250*sim.Microsecond {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.AddressMode != soda.Proxying {
		t.Fatal("address mode wrong")
	}
	if cfg.NewScheduler == nil || !strings.Contains(cfg.NewScheduler().Name(), "fair") {
		t.Fatal("scheduler wrong")
	}
	if len(cfg.Hosts) != 2 {
		t.Fatalf("hosts = %d", len(cfg.Hosts))
	}
	if cfg.Hosts[0].Clock != 3000*cycles.MHz || cfg.Hosts[0].NICMbps != 1000 {
		t.Fatalf("alpha = %+v", cfg.Hosts[0])
	}
	// beta inherits tacoma-class defaults.
	if cfg.Hosts[1].Clock != 1800*cycles.MHz || cfg.Hosts[1].MemoryMB != 768 {
		t.Fatalf("beta defaults = %+v", cfg.Hosts[1])
	}
	// The loaded config builds a working testbed.
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Hosts[0].Spec.Name != "alpha" || tb.Daemons[1].Mode() != soda.Proxying {
		t.Fatal("testbed from file config wrong")
	}
}

func TestLoadConfigDefaultsToPaperTestbed(t *testing.T) {
	cfg, err := LoadConfig(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Hosts) != 2 || tb.Hosts[0].Spec.Name != "seattle" {
		t.Fatal("empty scenario should yield the paper testbed")
	}
}

func TestLoadConfigErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":       `{`,
		"unknown field":  `{"bogus": 1}`,
		"bad scheduler":  `{"scheduler": "lottery"}`,
		"bad mode":       `{"address_mode": "nat"}`,
		"nameless host":  `{"hosts": [{"clock_mhz": 100}]}`,
		"duplicate host": `{"hosts": [{"name": "a"}, {"name": "a"}]}`,
		"neg latency":    `{"latency_us": -5}`,
	}
	for label, js := range cases {
		if _, err := LoadConfig(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}
