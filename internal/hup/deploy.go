package hup

import (
	"sort"
	"time"

	"repro/internal/appsvc"
	"repro/internal/cycles"
	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/soda"
	"repro/internal/svcswitch"
	"repro/internal/uml"
)

// WebDeployment instantiates the web content service on every node SODA
// primes for it and keeps per-node measurement hooks — the
// instrumentation behind Figures 4 and 6.
type WebDeployment struct {
	// Params is the service's request cost model.
	Params appsvc.WebParams

	tb *Testbed
	// services maps node name → the node's service instance.
	services map[string]*appsvc.WebService
	// latency maps node name → server-side response time summary
	// (forward received → response delivered).
	latency map[string]*metrics.DurationSummary
}

// NewWebDeployment prepares a web content deployment on the testbed.
func NewWebDeployment(tb *Testbed, params appsvc.WebParams) *WebDeployment {
	return &WebDeployment{
		Params:   params,
		tb:       tb,
		services: make(map[string]*appsvc.WebService),
		latency:  make(map[string]*metrics.DurationSummary),
	}
}

// Behavior returns the soda.Behavior that wires one service instance per
// primed node.
func (wd *WebDeployment) Behavior() soda.Behavior {
	return func(g *uml.Guest) svcswitch.Handler {
		ws := appsvc.NewWebService(wd.tb.Net, &appsvc.GuestBackend{G: g}, wd.Params, wd.tb.RNG.Split())
		wd.services[g.NodeName] = ws
		lat := &metrics.DurationSummary{}
		wd.latency[g.NodeName] = lat
		k := wd.tb.K
		return func(clientIP simnet.IP, onDone func()) bool {
			start := k.Now()
			return ws.HandleRequest(clientIP, func() {
				lat.ObserveDuration(time.Duration(k.Now().Sub(start)))
				if onDone != nil {
					onDone()
				}
			})
		}
	}
}

// Nodes returns the deployed node names, sorted.
func (wd *WebDeployment) Nodes() []string {
	out := make([]string, 0, len(wd.services))
	for n := range wd.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Service returns a node's service instance.
func (wd *WebDeployment) Service(node string) *appsvc.WebService { return wd.services[node] }

// Latency returns a node's server-side response-time summary.
func (wd *WebDeployment) Latency(node string) *metrics.DurationSummary { return wd.latency[node] }

// HoneypotDeployment instantiates the paper's honeypot service: the node
// runs a vulnerable victim server, addressed directly by attackers.
type HoneypotDeployment struct {
	tb *Testbed
	// honeypots maps node name → the victim wrapper.
	honeypots map[string]*appsvc.HoneypotService
}

// NewHoneypotDeployment prepares a honeypot deployment.
func NewHoneypotDeployment(tb *Testbed) *HoneypotDeployment {
	return &HoneypotDeployment{tb: tb, honeypots: make(map[string]*appsvc.HoneypotService)}
}

// Behavior wires one victim per node. The honeypot serves no legitimate
// requests, so the bound handler rejects routed traffic; attackers hit
// the node's address directly.
func (hd *HoneypotDeployment) Behavior() soda.Behavior {
	return func(g *uml.Guest) svcswitch.Handler {
		hd.honeypots[g.NodeName] = appsvc.NewHoneypot(hd.tb.Net, g)
		return nil
	}
}

// Victim returns a node's honeypot wrapper.
func (hd *HoneypotDeployment) Victim(node string) *appsvc.HoneypotService { return hd.honeypots[node] }

// Victims returns the node names with victims, sorted.
func (hd *HoneypotDeployment) Victims() []string {
	out := make([]string, 0, len(hd.honeypots))
	for n := range hd.honeypots {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CompDeployment runs the resource-isolation experiment's comp load:
// spinner processes doing "infinite loop[s] of dummy arithmetic
// operations" inside their node.
type CompDeployment struct {
	// Spinners is the number of spinning processes per node.
	Spinners int
	// Jobs maps node name → the started job.
	Jobs map[string]*appsvc.CompJob
}

// NewCompDeployment prepares a comp deployment with n spinners per node.
func NewCompDeployment(n int) *CompDeployment {
	return &CompDeployment{Spinners: n, Jobs: make(map[string]*appsvc.CompJob)}
}

// Behavior wires the spinners into each primed node.
func (cd *CompDeployment) Behavior() soda.Behavior {
	return func(g *uml.Guest) svcswitch.Handler {
		cd.Jobs[g.NodeName] = appsvc.StartComp(g, cd.Spinners)
		return nil
	}
}

// LogDeployment runs the experiment's log load: continuous formatted
// disk writes.
type LogDeployment struct {
	// RecordBytes and FormatCycles parameterise each log record.
	RecordBytes  int64
	FormatCycles cycles.Cycles
	// Jobs maps node name → the started job.
	Jobs map[string]*appsvc.LogJob
}

// NewLogDeployment prepares a log deployment. The defaults (32 KiB
// records, 2 M cycles of formatting, buffered writes) give the logger a
// continuous CPU demand above an equal third of tacoma's CPU, as the
// Figure 5 experiment requires.
func NewLogDeployment() *LogDeployment {
	return &LogDeployment{RecordBytes: 32 << 10, FormatCycles: 2e6, Jobs: make(map[string]*appsvc.LogJob)}
}

// Behavior wires the write loop into each primed node.
func (ld *LogDeployment) Behavior() soda.Behavior {
	return func(g *uml.Guest) svcswitch.Handler {
		ld.Jobs[g.NodeName] = appsvc.StartLog(g, ld.RecordBytes, ld.FormatCycles)
		return nil
	}
}

// SwitchTarget adapts a service's switch to the workload.Target shape.
type SwitchTarget struct {
	// Switch is the service switch requests enter through.
	Switch *svcswitch.Switch
}

// Route implements the workload generator's target contract.
func (t SwitchTarget) Route(clientIP simnet.IP, bytes int64, onDone func()) error {
	return t.Switch.Route(svcswitch.Request{ClientIP: clientIP, Bytes: bytes, OnDone: onDone})
}
