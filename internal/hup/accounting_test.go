package hup

import (
	"math"
	"testing"
	"time"

	"repro/internal/accounting"
	"repro/internal/appsvc"
	"repro/internal/sim"
	"repro/internal/soda"
	"repro/internal/svcswitch"
	"repro/internal/workload"
)

// accountingWindows compresses the SRE burn-rate windows so a
// two-minute simulated run exercises the full detection pipeline.
func accountingWindows() accounting.Options {
	return accounting.Options{
		SamplePeriod: sim.Second,
		EvalPeriod:   5 * sim.Second,
		Fast:         accounting.WindowPair{Short: 10 * sim.Second, Long: 40 * sim.Second, Threshold: 8},
		Slow:         accounting.WindowPair{Short: 40 * sim.Second, Long: 2 * sim.Minute, Threshold: 4},
		MinRequests:  20,
	}
}

// TestAccountingPipelineTwoServices is the subsystem's acceptance run:
// two web services share the testbed, one sized for its load and one
// driven far past its capacity. Across three seeds the pipeline must
// (a) meter CPU matching the host OS's own cycle accounting within 2%,
// (b) fire exactly one SLO violation for the overloaded service and
// none for the healthy one, and (c) produce billed CPU charges that
// reconcile with the windowed usage series.
func TestAccountingPipelineTwoServices(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		tb, err := New(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Agent.RegisterASP("asp", "k"); err != nil {
			t.Fatal(err)
		}
		rec := &soda.EventRecorder{}
		tb.Master.Observe(rec.Record)
		acct := tb.EnableAccounting(accountingWindows())

		img := WebContentImage("img", 2)
		if err := tb.Publish(img); err != nil {
			t.Fatal(err)
		}
		// An expensive request (~60M cycles) makes queueing visible at
		// this timescale: one client sees tens of milliseconds, forty
		// concurrent clients see seconds.
		params := appsvc.DefaultWebParams(8)
		params.ExtraCyclesPerRequest = 60e6
		slo := svcswitch.SLO{
			LatencyTarget:   250 * time.Millisecond,
			LatencyQuantile: 0.99,
			Availability:    0.99,
		}

		type run struct {
			name    string
			n       int
			clients int
			think   sim.Duration
			svc     *soda.Service
			gen     *workload.Generator
		}
		runs := []*run{
			{name: "healthy", n: 2, clients: 1, think: 200 * sim.Millisecond},
			{name: "overload", n: 1, clients: 40, think: 0},
		}
		for _, r := range runs {
			wd := NewWebDeployment(tb, params)
			svc, err := tb.CreateService("k", soda.ServiceSpec{
				Name: r.name, ImageName: img.Name, Repository: RepoIP,
				Requirement:  soda.Requirement{N: r.n, M: smallM()},
				GuestProfile: img.SystemServices, Behavior: wd.Behavior(),
				SLO: slo,
			})
			if err != nil {
				t.Fatalf("seed %d: create %s: %v", seed, r.name, err)
			}
			r.svc = svc
			r.gen = workload.NewGenerator(tb.K, SwitchTarget{Switch: svc.Switch}, tb.AddClient(), tb.RNG.Split())
			r.gen.RunClosedLoop(r.clients, r.think)
		}

		tb.K.RunFor(2 * sim.Minute)
		for _, r := range runs {
			r.gen.Stop()
		}
		acct.Sample() // settle metering to the final instant

		// (a) Metered CPU agrees with the host OS's cycle accounting.
		for _, r := range runs {
			var hostMHzSec float64
			for _, n := range r.svc.Nodes {
				hostMHzSec += n.Guest.Host().CPUCyclesFor(n.UID) / 1e6
			}
			got, ok := acct.Totals(r.name)
			if !ok {
				t.Fatalf("seed %d: %s not watched", seed, r.name)
			}
			if hostMHzSec <= 0 {
				t.Fatalf("seed %d: %s burned no cycles", seed, r.name)
			}
			if rel := math.Abs(got.CPUMHzSeconds-hostMHzSec) / hostMHzSec; rel > 0.02 {
				t.Fatalf("seed %d: %s metered %.0f MHz-s, host accounted %.0f (%.1f%% off)",
					seed, r.name, got.CPUMHzSeconds, hostMHzSec, rel*100)
			}
		}

		// (b) Exactly one violation for the overloaded service, none for
		// the healthy one.
		perSvc := map[string]int{}
		for _, e := range rec.Events() {
			if e.Kind == soda.EventSLOViolation {
				perSvc[e.Service]++
			}
		}
		if perSvc["overload"] != 1 {
			t.Fatalf("seed %d: overload violations = %d, want 1 (events: %v)",
				seed, perSvc["overload"], perSvc)
		}
		if perSvc["healthy"] != 0 {
			t.Fatalf("seed %d: healthy violations = %d, want 0", seed, perSvc["healthy"])
		}

		// (c) The billed CPU charge reconciles with the windowed series:
		// the run is far shorter than the coarse ring's horizon, so the
		// ring must contain every billed MHz-second, and the ASP's live
		// bill must match the meters.
		for _, r := range runs {
			u, _ := acct.Usage(r.name)
			var ringMHzSec float64
			for _, b := range u.Coarse {
				ringMHzSec += b.CPUMHzSeconds
			}
			if diff := math.Abs(ringMHzSec - u.CPUMHzSeconds); diff > 1e-6*math.Max(1, u.CPUMHzSeconds) {
				t.Fatalf("seed %d: %s coarse ring holds %.6f MHz-s, totals say %.6f",
					seed, r.name, ringMHzSec, u.CPUMHzSeconds)
			}
		}
		bill, ok := tb.Agent.Billing("asp")
		if !ok {
			t.Fatalf("seed %d: no bill", seed)
		}
		var meterSum float64
		for _, r := range runs {
			u, _ := acct.Totals(r.name)
			meterSum += u.CPUMHzSeconds
		}
		if rel := math.Abs(bill.CPUMHzSeconds-meterSum) / meterSum; rel > 1e-9 {
			t.Fatalf("seed %d: bill charges %.6f CPU MHz-s, meters say %.6f", seed, bill.CPUMHzSeconds, meterSum)
		}

		// The burn-rate gauges are live for the breached service.
		if u, _ := acct.Usage("overload"); u.SLO == nil || !u.SLO.Violating || u.SLO.Violations != 1 {
			t.Fatalf("seed %d: overload SLO view = %+v", seed, u.SLO)
		}
	}
}

// TestTeardownSettlesBill verifies the settlement path: tearing a
// service down folds its final metered totals into the ASP's account,
// and the usage gauges stop reporting it.
func TestTeardownSettlesBill(t *testing.T) {
	tb, err := New(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Agent.RegisterASP("asp", "k"); err != nil {
		t.Fatal(err)
	}
	acct := tb.EnableAccounting(accountingWindows())
	img := WebContentImage("img", 2)
	if err := tb.Publish(img); err != nil {
		t.Fatal(err)
	}
	params := appsvc.DefaultWebParams(8)
	params.ExtraCyclesPerRequest = 5e6
	wd := NewWebDeployment(tb, params)
	svc, err := tb.CreateService("k", soda.ServiceSpec{
		Name: "web", ImageName: img.Name, Repository: RepoIP,
		Requirement:  soda.Requirement{N: 1, M: smallM()},
		GuestProfile: img.SystemServices, Behavior: wd.Behavior(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(tb.K, SwitchTarget{Switch: svc.Switch}, tb.AddClient(), tb.RNG.Split())
	gen.RunClosedLoop(2, 50*sim.Millisecond)
	tb.K.RunFor(30 * sim.Second)
	gen.Stop()

	live, ok := acct.Totals("web")
	if !ok || live.CPUMHzSeconds <= 0 {
		t.Fatalf("no live usage before teardown: %+v ok=%v", live, ok)
	}
	if err := tb.Teardown("k", "web"); err != nil {
		t.Fatal(err)
	}
	if _, still := acct.Totals("web"); still {
		t.Fatal("service still watched after teardown")
	}
	bill, _ := tb.Agent.Billing("asp")
	if bill.CPUMHzSeconds < live.CPUMHzSeconds {
		t.Fatalf("bill %.3f MHz-s lost charges (live was %.3f)", bill.CPUMHzSeconds, live.CPUMHzSeconds)
	}
	if bill.MemoryGBHours <= 0 || bill.DiskGBHours <= 0 {
		t.Fatalf("reservation charges missing: %+v", bill)
	}
	if len(bill.OpenServices()) != 0 {
		t.Fatalf("bill still has open services: %v", bill.OpenServices())
	}
}
