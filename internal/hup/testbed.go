// Package hup assembles a complete Hosting Utility Platform testbed: the
// simulation kernel, the LAN, the HUP hosts with their SODA Daemons, the
// SODA Master and Agent, an ASP image repository, and client machines.
// The default configuration reproduces the paper's two-host testbed
// (§4: seattle and tacoma on a 100 Mbps LAN, with "a number of laptop and
// desktop PCs running as the SODA Agent, SODA Master, and service
// clients").
package hup

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/accounting"
	"repro/internal/chaos"
	"repro/internal/flight"
	"repro/internal/hostos"
	"repro/internal/hostos/sched"
	"repro/internal/image"
	"repro/internal/reqtrace"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/soda"
	"repro/internal/telemetry"
)

// Config parameterises a testbed.
type Config struct {
	// Hosts are the HUP hosts; nil means the paper's seattle + tacoma.
	Hosts []hostos.Spec
	// Latency is the LAN's one-way propagation delay; 0 means 100 µs.
	Latency sim.Duration
	// NewScheduler builds each host's CPU scheduler; nil means SODA's
	// proportional-share scheduler.
	NewScheduler func() sched.Scheduler
	// Seed drives all the testbed's randomness.
	Seed uint64
	// AddressMode selects bridging (default) or the §3.3-footnote-3
	// proxying for virtual service node addressing.
	AddressMode soda.AddressMode
}

// Well-known control-plane addresses on the testbed LAN.
const (
	MasterIP  = simnet.IP("128.10.9.2")
	AgentIP   = simnet.IP("128.10.9.3")
	StandbyIP = simnet.IP("128.10.9.4")
	RepoIP    = simnet.IP("128.10.8.1")
)

// Testbed is a running HUP with its SODA control plane.
type Testbed struct {
	K       *sim.Kernel
	Net     *simnet.Network
	Hosts   []*hostos.Host
	Daemons []*soda.Daemon
	Master  *soda.Master
	Agent   *soda.Agent
	Repo    *image.Repository
	RNG     *sim.RNG

	// Registry and Tracer are nil until EnableTelemetry.
	Registry *telemetry.Registry
	Tracer   *telemetry.Tracer

	// Accountant is nil until EnableAccounting.
	Accountant *accounting.Accountant

	// Chaos is nil until EnableChaos.
	Chaos *chaos.Injector

	// Standby and Cluster are nil until EnableHA.
	Standby *soda.Master
	Cluster *soda.Cluster

	// Flight and FlightLog are nil until EnableFlightRecorder.
	Flight    *flight.Recorder
	FlightLog *flight.Logger

	// ReqTraces is nil until EnableRequestTracing.
	ReqTraces *reqtrace.Store

	clients     int
	autoscaling bool
}

// New builds a testbed.
func New(cfg Config) (*Testbed, error) {
	if cfg.Hosts == nil {
		cfg.Hosts = []hostos.Spec{hostos.Seattle(), hostos.Tacoma()}
	}
	if cfg.Latency == 0 {
		cfg.Latency = 100 * sim.Microsecond
	}
	if cfg.NewScheduler == nil {
		cfg.NewScheduler = func() sched.Scheduler { return sched.NewProportional() }
	}
	k := sim.NewKernel()
	net := simnet.New(k, cfg.Latency)
	tb := &Testbed{K: k, Net: net, RNG: sim.NewRNG(cfg.Seed ^ 0x50da)}

	for i, spec := range cfg.Hosts {
		h, err := hostos.New(k, spec, cfg.NewScheduler())
		if err != nil {
			return nil, err
		}
		nic, err := net.Attach(spec.Name, spec.NICMbps)
		if err != nil {
			return nil, err
		}
		hostIP := simnet.IP(fmt.Sprintf("128.10.9.%d", 10+i))
		if err := nic.AddIP(hostIP); err != nil {
			return nil, err
		}
		// Disjoint per-daemon IP pools (§4.3). The first hosts share the
		// .9 subnet with the control plane; once that octet would
		// overflow, each further daemon gets a subnet of its own, so
		// large replica fleets (the -primescale experiment) still build.
		subnet, lo := "128.10.9", 100+i*20
		if lo+19 > 255 {
			subnet, lo = fmt.Sprintf("128.10.%d", 40+i), 100
		}
		pool, err := simnet.NewIPPool(subnet, lo, lo+19)
		if err != nil {
			return nil, err
		}
		d, err := soda.NewDaemon(soda.DaemonConfig{
			Host:    h,
			NIC:     nic,
			Net:     net,
			HostIP:  hostIP,
			Pool:    pool,
			UIDBase: 10000 * (i + 1),
			Mode:    cfg.AddressMode,
		})
		if err != nil {
			return nil, err
		}
		tb.Hosts = append(tb.Hosts, h)
		tb.Daemons = append(tb.Daemons, d)
	}

	// Control-plane machines.
	for _, m := range []struct {
		name string
		ip   simnet.IP
	}{{"master", MasterIP}, {"agent", AgentIP}, {"asp-repo", RepoIP}} {
		nic, err := net.Attach(m.name, 100)
		if err != nil {
			return nil, err
		}
		if err := nic.AddIP(m.ip); err != nil {
			return nil, err
		}
	}
	repo, err := image.NewRepository(net, RepoIP)
	if err != nil {
		return nil, err
	}
	tb.Repo = repo
	master, err := soda.NewMaster(net, MasterIP, tb.Daemons)
	if err != nil {
		return nil, err
	}
	tb.Master = master
	agent, err := soda.NewAgent(net, AgentIP, master)
	if err != nil {
		return nil, err
	}
	tb.Agent = agent
	for _, d := range tb.Daemons {
		d.RegisterRepository(repo)
	}
	return tb, nil
}

// EnableTelemetry builds a metrics registry and a tracer on the
// kernel's virtual clock and wires them through the whole control
// plane: the Master (admission counters, priming span trees, switch
// instrumentation for every service created afterwards) and each
// Daemon (stage histograms, node gauges). Returns the registry and
// tracer, which are also kept on the Testbed for exposition.
func (tb *Testbed) EnableTelemetry() (*telemetry.Registry, *telemetry.Tracer) {
	if tb.Registry != nil {
		return tb.Registry, tb.Tracer
	}
	reg := telemetry.NewRegistry()
	k := tb.K
	tracer := telemetry.NewTracer(func() sim.Duration { return k.Now().Duration() })
	tb.Master.Instrument(reg, tracer)
	for _, d := range tb.Daemons {
		d.Instrument(reg)
	}
	// Identity instruments: soda_build_info is a constant-1 gauge whose
	// labels carry the build, and soda_uptime_seconds is refreshed at
	// exposition time (api.handleMetrics) rather than by a standing timer
	// — a timer here would keep the kernel's event queue from draining
	// for callers that use K.Run().
	mod := "repro"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Path != "" {
		mod = bi.Main.Path
	}
	reg.Gauge("soda_build_info",
		telemetry.L("go", runtime.Version()), telemetry.L("module", mod)).Set(1)
	reg.Gauge("soda_uptime_seconds").Set(k.Now().Seconds())
	tb.Registry, tb.Tracer = reg, tracer
	return reg, tracer
}

// maxIncidentTraces bounds how many retained slow traces an
// SLO-violation incident bundle embeds.
const maxIncidentTraces = 32

// EnableRequestTracing builds the tail-sampling per-request trace
// store and attaches it to the Master: every service switch — existing
// and future — gets a per-service collector whose slow-retention
// threshold derives from the service's SLO latency target (cfg's
// SlowThreshold when the service has none). Trace IDs share the
// telemetry exemplar namespace, so latency exemplars point at retained
// records, resolvable via /traces/{id}. Retention is deterministic:
// under the virtual clock, same-seed runs keep byte-identical rings.
// Telemetry is enabled implicitly so the sampler's counters register.
// Idempotent; the config of the first call wins.
func (tb *Testbed) EnableRequestTracing(cfg reqtrace.Config) *reqtrace.Store {
	if tb.ReqTraces != nil {
		return tb.ReqTraces
	}
	reg, _ := tb.EnableTelemetry()
	st := reqtrace.NewStore(cfg, reg)
	tb.Master.EnableRequestTracing(st)
	tb.ReqTraces = st
	return st
}

// EnableAccounting builds the usage-metering and SLO-evaluation
// subsystem on the kernel's virtual clock, attaches it to the Master
// (services watched on activation, violations surfaced as events), and
// schedules the sampling and evaluation ticks on the kernel. Telemetry
// is enabled implicitly so usage and burn-rate gauges have a registry.
// opt's Clock is overridden with the kernel clock; zero-valued fields
// take the accounting defaults.
func (tb *Testbed) EnableAccounting(opt accounting.Options) *accounting.Accountant {
	if tb.Accountant != nil {
		return tb.Accountant
	}
	reg, tracer := tb.EnableTelemetry()
	k := tb.K
	opt.Clock = func() sim.Time { return k.Now() }
	opt.Registry = reg
	opt.Tracer = tracer
	acct := accounting.New(opt)
	tb.Master.EnableAccounting(acct)
	// One combined ticker drives both sampling and evaluation: a single
	// standing timer keeps the kernel's event heap shallow for the
	// routing hot path, and evaluations always see a fresh sample.
	evalEvery := int(acct.EvalPeriod() / acct.SamplePeriod())
	if evalEvery < 1 {
		evalEvery = 1
	}
	ticks := 0
	k.Every(acct.SamplePeriod(), func() {
		acct.Sample()
		if ticks++; ticks%evalEvery == 0 {
			acct.Evaluate()
		}
	})
	tb.Accountant = acct
	return acct
}

// EnableSelfHealing turns on the Master's heartbeat failure detector,
// automatic node recovery, and passive per-backend switch health.
// Telemetry is enabled implicitly so recovery counters and MTTR
// histograms have a registry. Zero-valued cfg fields take the soda
// defaults.
func (tb *Testbed) EnableSelfHealing(cfg soda.HealthConfig) {
	tb.EnableTelemetry()
	tb.Master.EnableHealth(cfg)
}

// EnableHA builds the warm-standby control plane: a second Master on
// its own machine (StandbyIP), the crash-consistent journal on the
// primary with frame-streaming to the standby, and the lease/epoch
// failover protocol. Telemetry is enabled implicitly so the failover
// counter, MTTR histogram, and journal gauges have a registry; a
// flight recorder or chaos injector enabled earlier is wired through.
// Idempotent; the config of the first call wins.
func (tb *Testbed) EnableHA(cfg soda.HAConfig) (*soda.Cluster, error) {
	if tb.Cluster != nil {
		return tb.Cluster, nil
	}
	reg, _ := tb.EnableTelemetry()
	nic, err := tb.Net.Attach("standby", 100)
	if err != nil {
		return nil, err
	}
	if err := nic.AddIP(StandbyIP); err != nil {
		return nil, err
	}
	standby, err := soda.NewMaster(tb.Net, StandbyIP, tb.Daemons)
	if err != nil {
		return nil, err
	}
	standby.Instrument(reg, nil)
	if tb.FlightLog != nil {
		standby.SetFlightLogger(tb.FlightLog)
	}
	cluster, err := soda.NewCluster(tb.Net, tb.Master, standby, cfg)
	if err != nil {
		return nil, err
	}
	cluster.Instrument(reg)
	if tb.Chaos != nil {
		tb.Chaos.SetCluster(cluster)
	}
	tb.Standby, tb.Cluster = standby, cluster
	return cluster, nil
}

// AutoscaleOptions parameterises EnableAutoscaling.
type AutoscaleOptions struct {
	// TickEvery is the control-loop cadence (default 1s).
	TickEvery sim.Duration
}

// EnableAutoscaling starts the demand-driven control loop: a kernel
// timer ticks the Master's autoscaler at a fixed period, and every
// service whose spec carries an enabled autoscale policy is driven
// toward its target utilization (ISSUE: scale-up on burn/drops, scaled
// down in troughs under hysteresis and cooldowns). Accounting is
// enabled implicitly — the loop's utilization and burn-rate signals
// come from it; request tracing and chaos remain optional extras.
// The tick self-routes to the cluster leader, so under HA the same
// timer keeps driving whichever Master currently holds the lease.
// Idempotent; the cadence of the first call wins.
func (tb *Testbed) EnableAutoscaling(opt AutoscaleOptions) {
	if tb.autoscaling {
		return
	}
	tb.autoscaling = true
	tb.EnableAccounting(accounting.Options{})
	tick := opt.TickEvery
	if tick <= 0 {
		tick = sim.Second
	}
	master := tb.Master
	tb.K.Every(tick, func() { master.AutoscaleTick() })
}

// AutoscalingEnabled reports whether EnableAutoscaling has run.
func (tb *Testbed) AutoscalingEnabled() bool { return tb.autoscaling }

// LeaderMaster returns the Master currently holding the leadership
// lease — the primary when HA is off or no failover has happened, the
// adopted standby after one. Surfaces that read control-loop or
// service state should consult it rather than Master directly.
func (tb *Testbed) LeaderMaster() *soda.Master {
	if tb.Cluster != nil {
		return tb.Cluster.Leader()
	}
	return tb.Master
}

// EnableChunkDistribution turns on cooperative content-addressed image
// distribution: every daemon gains a chunk store and serve path, and the
// Master acts as the tracker planning multi-source chunk fetches.
// Idempotent; a zero config takes the defaults.
func (tb *Testbed) EnableChunkDistribution(cfg soda.ChunkDistConfig) {
	tb.Master.EnableChunkDistribution(cfg)
}

// EnableChaos attaches a fault injector to the testbed. Its randomness
// derives from seed alone — independent of the testbed's main RNG
// stream, so a chaos run's fault-free prefix is identical to the same
// run without chaos. Idempotent; the seed of the first call wins.
func (tb *Testbed) EnableChaos(seed uint64) *chaos.Injector {
	if tb.Chaos != nil {
		return tb.Chaos
	}
	tb.Chaos = chaos.New(chaos.Config{
		Kernel:  tb.K,
		Net:     tb.Net,
		Master:  tb.Master,
		Daemons: tb.Daemons,
		Repo:    tb.Repo,
		Cluster: tb.Cluster,
		Seed:    seed,
	})
	return tb.Chaos
}

// FlightOptions parameterises EnableFlightRecorder. Zero values take
// the flight package defaults plus the tick cadences below.
type FlightOptions struct {
	// Ring and incident shape; zero-valued fields take flight defaults.
	Capacity           int
	PreRecords         int
	PostWindow         sim.Duration
	Cooldown           sim.Duration
	MaxIncidents       int
	MaxIncidentRecords int
	// CaptureEvery is the metric-snapshot heartbeat (default 1s).
	CaptureEvery sim.Duration
	// TickEvery is the incident seal-check cadence (default 250ms).
	TickEvery sim.Duration
}

// EnableFlightRecorder builds the black-box flight recorder on the
// kernel's virtual clock and wires it through the control plane: a
// structured logger on the Master (propagated to daemons, switches,
// health, and accounting), an event observer turning every SODA event
// into a ring record, automatic incident triggers on SLO violations
// and host failures, and kernel timers for metric snapshots and
// incident sealing. Telemetry is enabled implicitly so bundles carry
// metric deltas and span subtrees. Deterministic: timestamps come from
// virtual time, so same-seed runs produce byte-identical incident
// bundles. Idempotent; the options of the first call win.
func (tb *Testbed) EnableFlightRecorder(opt FlightOptions) (*flight.Recorder, *flight.Logger) {
	if tb.Flight != nil {
		return tb.Flight, tb.FlightLog
	}
	reg, tracer := tb.EnableTelemetry()
	k := tb.K
	master := tb.Master
	rec := flight.NewRecorder(flight.Options{
		Clock:              func() time.Duration { return k.Now().Duration() },
		Capacity:           opt.Capacity,
		PreRecords:         opt.PreRecords,
		PostWindow:         time.Duration(opt.PostWindow),
		Cooldown:           time.Duration(opt.Cooldown),
		MaxIncidents:       opt.MaxIncidents,
		MaxIncidentRecords: opt.MaxIncidentRecords,
		Metrics:            reg.Snapshot,
		Spans:              tracer.Roots,
		Routes: func() []flight.RouteTable {
			var out []flight.RouteTable
			for _, name := range master.Services() {
				svc, ok := master.Service(name)
				if !ok || svc.Config == nil {
					continue
				}
				out = append(out, flight.RouteTable{Service: name, Table: svc.Config.Render()})
			}
			return out
		},
		Faults: func() []string {
			// Closure, not a bound snapshot: chaos may be enabled after
			// the recorder, and bundles should still list the schedule.
			if tb.Chaos == nil {
				return nil
			}
			faults := tb.Chaos.ActiveFaults()
			out := make([]string, len(faults))
			for i, f := range faults {
				out[i] = f.String()
			}
			return out
		},
		Traces: func(trigger, subject string) []reqtrace.Record {
			// SLO-violation bundles embed the violating service's
			// retained slow traces. Closure over the testbed: request
			// tracing may be enabled after the recorder (nil store and
			// nil collectors degrade to no traces).
			if trigger != "slo-violation" {
				return nil
			}
			return tb.ReqTraces.SlowTraces(subject, maxIncidentTraces)
		},
	})
	log := flight.NewLogger(rec)
	master.SetFlightLogger(log)
	if tb.Standby != nil {
		tb.Standby.SetFlightLogger(log)
	}

	// Every SODA event becomes a ring record; failure-path events also
	// open incidents, keyed per subject so a multi-host outage captures
	// one bundle per host while a flapping host stays rate-limited.
	master.Observe(func(ev soda.Event) {
		msg := ev.Kind.String()
		level := flight.LevelInfo
		switch ev.Kind {
		case soda.EventRejected, soda.EventNodeFailed, soda.EventHostDead, soda.EventRecoveryFailed, soda.EventMasterDown:
			level = flight.LevelError
		case soda.EventHostSuspected, soda.EventSLOViolation:
			level = flight.LevelWarn
		case soda.EventSpanEnded:
			level = flight.LevelDebug
		}
		labels := make([]telemetry.Label, 0, 3)
		if ev.Service != "" {
			labels = append(labels, telemetry.L("service", ev.Service))
		}
		if ev.Node != "" {
			labels = append(labels, telemetry.L("node", ev.Node))
		}
		if ev.Detail != "" {
			labels = append(labels, telemetry.L("detail", ev.Detail))
		}
		elog := log.Component("event")
		switch level {
		case flight.LevelError:
			elog.Error(msg, labels...)
		case flight.LevelWarn:
			elog.Warn(msg, labels...)
		case flight.LevelDebug:
			elog.Debug(msg, labels...)
		default:
			elog.Info(msg, labels...)
		}
		switch ev.Kind {
		case soda.EventSLOViolation:
			rec.Trigger("slo-violation", ev.Service, ev.Detail)
		case soda.EventHostSuspected:
			rec.Trigger("host-suspected", ev.Node, ev.Detail)
		case soda.EventHostDead:
			rec.Trigger("host-dead", ev.Node, ev.Detail)
		case soda.EventNodeRecovered:
			rec.Trigger("node-recovered", ev.Service, ev.Detail)
		case soda.EventMasterDown:
			rec.Trigger("master-down", "master", ev.Detail)
		case soda.EventFailover:
			rec.Trigger("failover", "master", ev.Detail)
		case soda.EventAutoscale:
			// Capacity changes are exactly the context a post-hoc
			// investigation wants around a load event; failures and
			// blocks double as warnings above.
			rec.Trigger("autoscale", ev.Service, ev.Detail)
		}
	})

	capture := opt.CaptureEvery
	if capture <= 0 {
		capture = sim.Second
	}
	tick := opt.TickEvery
	if tick <= 0 {
		tick = 250 * sim.Millisecond
	}
	k.Every(capture, rec.CaptureMetrics)
	k.Every(tick, rec.Tick)

	tb.Flight, tb.FlightLog = rec, log
	return rec, log
}

// MustNew is New, panicking on error; for benchmarks and examples.
func MustNew(cfg Config) *Testbed {
	tb, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return tb
}

// AddClient attaches one client machine to the LAN and returns its
// address.
func (tb *Testbed) AddClient() simnet.IP {
	tb.clients++
	name := fmt.Sprintf("client-%d", tb.clients)
	ip := simnet.IP(fmt.Sprintf("128.10.7.%d", tb.clients))
	nic := tb.Net.MustAttach(name, 100)
	if err := nic.AddIP(ip); err != nil {
		panic(err)
	}
	return ip
}

// Publish stores an image in the ASP repository.
func (tb *Testbed) Publish(im *image.Image) error { return tb.Repo.Publish(im) }

// CreateService runs a creation request through the Agent with the given
// credential and blocks the simulation until it settles, returning the
// active service. It is the synchronous convenience used by tests,
// examples, and benchmarks.
func (tb *Testbed) CreateService(credential string, spec soda.ServiceSpec) (*soda.Service, error) {
	var (
		svc  *soda.Service
		serr error
		done bool
	)
	tb.Agent.ServiceCreation(credential, spec,
		func(s *soda.Service) { svc, done = s, true },
		func(err error) { serr, done = err, true })
	for !done && tb.K.Pending() > 0 {
		tb.K.RunFor(sim.Second)
	}
	if !done {
		return nil, fmt.Errorf("hup: service creation for %q never settled", spec.Name)
	}
	return svc, serr
}

// Resize runs a resizing request synchronously.
func (tb *Testbed) Resize(credential, name string, newN int) (*soda.Service, error) {
	var (
		svc  *soda.Service
		serr error
		done bool
	)
	tb.Agent.ServiceResizing(credential, name, newN,
		func(s *soda.Service) { svc, done = s, true },
		func(err error) { serr, done = err, true })
	for !done && tb.K.Pending() > 0 {
		tb.K.RunFor(sim.Second)
	}
	if !done {
		return nil, fmt.Errorf("hup: resize of %q never settled", name)
	}
	return svc, serr
}

// Teardown runs a tear-down request synchronously.
func (tb *Testbed) Teardown(credential, name string) error {
	var (
		serr error
		done bool
	)
	tb.Agent.ServiceTeardown(credential, name,
		func() { done = true },
		func(err error) { serr, done = err, true })
	for !done && tb.K.Pending() > 0 {
		tb.K.RunFor(sim.Second)
	}
	if !done {
		return fmt.Errorf("hup: teardown of %q never settled", name)
	}
	return serr
}
