package hup

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/appsvc"
	"repro/internal/reqtrace"
	"repro/internal/sim"
	"repro/internal/soda"
	"repro/internal/svcswitch"
	"repro/internal/workload"
)

// runReqtraceScenario drives one seeded workload with request tracing
// on and returns the store plus the marshalled retained records — the
// determinism test compares these byte-for-byte across runs.
func runReqtraceScenario(t *testing.T, seed uint64) (*Testbed, *reqtrace.Store, []byte) {
	t.Helper()
	tb, err := New(Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Agent.RegisterASP("asp", "k"); err != nil {
		t.Fatal(err)
	}
	st := tb.EnableRequestTracing(reqtrace.Config{Capacity: 128, HeadEvery: 16})

	img := WebContentImage("img", 2)
	if err := tb.Publish(img); err != nil {
		t.Fatal(err)
	}
	wd := NewWebDeployment(tb, appsvc.DefaultWebParams(8))
	svc, err := tb.CreateService("k", soda.ServiceSpec{
		Name: "web", ImageName: img.Name, Repository: RepoIP,
		Requirement:  soda.Requirement{N: 2, M: smallM()},
		GuestProfile: img.SystemServices, Behavior: wd.Behavior(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(tb.K, SwitchTarget{Switch: svc.Switch}, tb.AddClient(), tb.RNG.Split())
	// Closed-loop with jittered think time so the arrival pattern (and
	// therefore the retained ring) genuinely depends on the seed.
	gen.RunClosedLoop(4, 10*sim.Millisecond)
	tb.K.RunFor(3 * sim.Second)
	gen.Stop()

	blob, err := json.Marshal(st.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return tb, st, blob
}

// TestRequestTracingEndToEnd: a traced workload retains records with
// full per-stage attribution, the stages partition the total exactly
// (virtual time has no measurement slop), and every histogram exemplar
// resolves to a retained trace.
func TestRequestTracingEndToEnd(t *testing.T) {
	tb, st, _ := runReqtraceScenario(t, 5)

	recs := st.Snapshot("web")
	if len(recs) == 0 {
		t.Fatal("no traces retained")
	}
	// ~1k requests over 3 virtual seconds with HeadEvery 16 → a healthy
	// head sample even if nothing is slow, errored, or retried.
	if len(recs) < 10 {
		t.Fatalf("retained %d traces, want ≥ 10", len(recs))
	}
	for _, rec := range recs {
		if rec.Service != "web" || rec.ID == 0 || rec.Why == 0 {
			t.Fatalf("malformed record: %+v", rec)
		}
		if rec.Why&reqtrace.KeptHead != 0 && rec.ID%16 != 0 {
			t.Fatalf("head-retained record off the 1-in-16 grid: %+v", rec)
		}
		if rec.Dropped {
			continue
		}
		if rec.Backend == "" || rec.TotalNs <= 0 || rec.ServeNs <= 0 {
			t.Fatalf("incomplete successful record: %+v", rec)
		}
		if sum := rec.QueueNs + rec.RouteNs + rec.UpstreamNs + rec.ServeNs; sum != rec.TotalNs {
			t.Fatalf("stages do not partition the total (%d != %d): %+v", sum, rec.TotalNs, rec)
		}
	}

	// Exemplar contract: with tracing on, the switch stamps a trace ID
	// only when the request was retained — so every exposed exemplar
	// must resolve via the store.
	exemplars := 0
	for _, h := range tb.Registry.Snapshot().Histograms {
		if h.Labels["service"] != "web" {
			continue
		}
		for _, ex := range h.Exemplars {
			if ex.Trace == 0 {
				continue
			}
			exemplars++
			if _, ok := st.Lookup(ex.Trace); !ok {
				t.Fatalf("%s exemplar trace=%d does not resolve", h.Name, ex.Trace)
			}
		}
	}
	if exemplars == 0 {
		t.Fatal("no trace-carrying exemplars exposed")
	}
}

// TestRequestTracingDeterministicAcrossRuns: same-seed runs retain
// byte-identical rings — IDs, stage durations, and retention verdicts
// are all virtual-time-exact.
func TestRequestTracingDeterministicAcrossRuns(t *testing.T) {
	_, _, a := runReqtraceScenario(t, 21)
	_, _, b := runReqtraceScenario(t, 21)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed retained rings differ:\nrun A: %s\nrun B: %s", a, b)
	}
	_, _, c := runReqtraceScenario(t, 22)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical rings")
	}
}

// TestEnableRequestTracingRetrofit: enabling tracing after a service is
// already live attaches a collector to its switch, and the collector
// inherits the service's SLO latency target as its slow threshold.
func TestEnableRequestTracingRetrofit(t *testing.T) {
	tb, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Agent.RegisterASP("asp", "k"); err != nil {
		t.Fatal(err)
	}
	img := WebContentImage("img", 2)
	if err := tb.Publish(img); err != nil {
		t.Fatal(err)
	}
	wd := NewWebDeployment(tb, appsvc.DefaultWebParams(8))
	spec := soda.ServiceSpec{
		Name: "web", ImageName: img.Name, Repository: RepoIP,
		Requirement:  soda.Requirement{N: 1, M: smallM()},
		GuestProfile: img.SystemServices, Behavior: wd.Behavior(),
		SLO: svcswitch.SLO{LatencyTarget: 40 * time.Millisecond},
	}
	svc, err := tb.CreateService("k", spec)
	if err != nil {
		t.Fatal(err)
	}
	if svc.Switch.RequestTracer() != nil {
		t.Fatal("tracer attached before EnableRequestTracing")
	}
	st := tb.EnableRequestTracing(reqtrace.Config{})
	c := svc.Switch.RequestTracer()
	if c == nil {
		t.Fatal("EnableRequestTracing did not retrofit the live switch")
	}
	if got := c.SlowThreshold(); got.Milliseconds() != 40 {
		t.Fatalf("slow threshold %v, want the 40ms SLO target", got)
	}
	// Idempotent: a second enable returns the same store.
	if tb.EnableRequestTracing(reqtrace.Config{}) != st {
		t.Fatal("second EnableRequestTracing built a new store")
	}
}
