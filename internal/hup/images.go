package hup

import (
	"repro/internal/image"
	"repro/internal/uml"
)

// The paper's four benchmark images (Table 2), reconstructed with the
// documented sizes and guest-OS configurations.

// WebContentImage is S_I: the static web content service on
// rootfs_base_1.0 (29.3 MB). datasetMB of static files are included so
// the Figure 4/6 experiments can vary the served dataset.
func WebContentImage(name string, datasetMB int) *image.Image {
	b := image.NewBuilder(name).
		WithService("/usr/sbin/httpd", 2<<20, 8080).
		WithWorkers(8).
		WithSystemServices(uml.ProfileBase()...)
	files := datasetMB * 32 // 32 KiB files
	if files > 0 {
		b.WithDataset(files, 32<<10)
	}
	return b.PadToMB(29 + datasetMB).MustBuild()
}

// HoneypotImage is S_II: the vulnerable ghttpd victim on
// root_fs_tomrtbt_1.7.205 (15 MB).
func HoneypotImage(name string) *image.Image {
	return image.NewBuilder(name).
		WithService("/usr/sbin/ghttpd-1.4", 1<<20, 8080).
		WithWorkers(1).
		WithSystemServices(uml.ProfileTomsrtbt()...).
		PadToMB(15).
		MustBuild()
}

// LFSImage is S_III: a service on root_fs_lfs_4.0 — few system services
// but a 400 MB root file system.
func LFSImage(name string) *image.Image {
	return image.NewBuilder(name).
		WithService("/usr/sbin/httpd", 2<<20, 8080).
		WithWorkers(4).
		WithSystemServices(uml.ProfileLFS()...).
		PadToMB(400).
		MustBuild()
}

// FullServerImage is S_IV: root_fs.rh-7.2-server.pristine.20021012 — a
// full-blown 253 MB Linux server requiring every system service.
func FullServerImage(name string) *image.Image {
	return image.NewBuilder(name).
		WithService("/usr/sbin/httpd", 2<<20, 8080).
		WithWorkers(4).
		WithSystemServices(uml.ProfileFullServer()...).
		PadToMB(253).
		MustBuild()
}

// Table2Case describes one row of the paper's Table 2.
type Table2Case struct {
	// Label is the paper's service name (S_I … S_IV).
	Label string
	// Configuration is the paper's "Linux configuration" column.
	Configuration string
	// Image builds the packaged image.
	Image func(name string) *image.Image
	// Profile is the image's guest-OS configuration.
	Profile []string
	// PaperSeattleSec and PaperTacomaSec are the published bootstrap
	// times, kept for EXPERIMENTS.md comparison.
	PaperSeattleSec, PaperTacomaSec float64
}

// Table2Cases returns the paper's four bootstrap measurements.
func Table2Cases() []Table2Case {
	return []Table2Case{
		{
			Label:           "S_I",
			Configuration:   "rootfs_base_1.0",
			Image:           func(name string) *image.Image { return WebContentImage(name, 0) },
			Profile:         uml.ProfileBase(),
			PaperSeattleSec: 3.0, PaperTacomaSec: 4.0,
		},
		{
			Label:           "S_II",
			Configuration:   "root_fs_tomrtbt_1.7.205",
			Image:           HoneypotImage,
			Profile:         uml.ProfileTomsrtbt(),
			PaperSeattleSec: 2.0, PaperTacomaSec: 3.0,
		},
		{
			Label:           "S_III",
			Configuration:   "root_fs_lfs_4.0",
			Image:           LFSImage,
			Profile:         uml.ProfileLFS(),
			PaperSeattleSec: 4.0, PaperTacomaSec: 16.0,
		},
		{
			Label:           "S_IV",
			Configuration:   "root_fs.rh-7.2-server.pristine.20021012",
			Image:           FullServerImage,
			Profile:         uml.ProfileFullServer(),
			PaperSeattleSec: 22.0, PaperTacomaSec: 42.0,
		},
	}
}
