package hup

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cycles"
	"repro/internal/hostos"
	"repro/internal/hostos/sched"
	"repro/internal/sim"
	"repro/internal/soda"
)

// FileConfig is the JSON scenario format cmd/sodad loads with -config:
// a HUP topology plus platform knobs. Omitted fields default to the
// paper's testbed values.
//
//	{
//	  "seed": 7,
//	  "latency_us": 100,
//	  "scheduler": "proportional",
//	  "address_mode": "bridging",
//	  "hosts": [
//	    {"name": "seattle", "clock_mhz": 2600, "memory_mb": 2048,
//	     "disk_mb": 60000, "disk_write_mbps": 45, "disk_read_mbps": 55,
//	     "disk_seek_ms": 6, "nic_mbps": 100}
//	  ]
//	}
type FileConfig struct {
	Seed        uint64         `json:"seed"`
	LatencyUs   int            `json:"latency_us"`
	Scheduler   string         `json:"scheduler"`
	AddressMode string         `json:"address_mode"`
	Hosts       []FileHostSpec `json:"hosts"`
}

// FileHostSpec is one host row of the scenario file.
type FileHostSpec struct {
	Name          string  `json:"name"`
	ClockMHz      int     `json:"clock_mhz"`
	MemoryMB      int     `json:"memory_mb"`
	DiskMB        int     `json:"disk_mb"`
	DiskWriteMBps float64 `json:"disk_write_mbps"`
	DiskReadMBps  float64 `json:"disk_read_mbps"`
	DiskSeekMs    float64 `json:"disk_seek_ms"`
	NICMbps       float64 `json:"nic_mbps"`
}

// spec converts a host row to a hostos.Spec with paper-testbed defaults
// for omitted fields.
func (f FileHostSpec) spec() (hostos.Spec, error) {
	base := hostos.Tacoma() // conservative defaults
	s := hostos.Spec{
		Name:          f.Name,
		Clock:         cycles.Hz(f.ClockMHz) * cycles.MHz,
		MemoryMB:      f.MemoryMB,
		DiskMB:        f.DiskMB,
		DiskWriteMBps: f.DiskWriteMBps,
		DiskReadMBps:  f.DiskReadMBps,
		DiskSeekMs:    f.DiskSeekMs,
		NICMbps:       f.NICMbps,
	}
	if s.Clock <= 0 {
		s.Clock = base.Clock
	}
	if s.MemoryMB <= 0 {
		s.MemoryMB = base.MemoryMB
	}
	if s.DiskMB <= 0 {
		s.DiskMB = base.DiskMB
	}
	if s.DiskWriteMBps <= 0 {
		s.DiskWriteMBps = base.DiskWriteMBps
	}
	if s.DiskReadMBps <= 0 {
		s.DiskReadMBps = base.DiskReadMBps
	}
	if s.DiskSeekMs <= 0 {
		s.DiskSeekMs = base.DiskSeekMs
	}
	if s.NICMbps <= 0 {
		s.NICMbps = base.NICMbps
	}
	if err := s.Validate(); err != nil {
		return hostos.Spec{}, err
	}
	return s, nil
}

// LoadConfig parses a JSON scenario into a testbed Config.
func LoadConfig(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var fc FileConfig
	if err := dec.Decode(&fc); err != nil {
		return Config{}, fmt.Errorf("hup: parsing scenario: %w", err)
	}
	cfg := Config{Seed: fc.Seed}
	if fc.LatencyUs < 0 {
		return Config{}, fmt.Errorf("hup: negative latency_us")
	}
	if fc.LatencyUs > 0 {
		cfg.Latency = sim.Duration(fc.LatencyUs) * sim.Microsecond
	}
	switch fc.Scheduler {
	case "", "proportional":
		// default
	case "fair":
		cfg.NewScheduler = func() sched.Scheduler { return sched.NewFairShare() }
	default:
		return Config{}, fmt.Errorf("hup: unknown scheduler %q (want proportional|fair)", fc.Scheduler)
	}
	switch fc.AddressMode {
	case "", "bridging":
		cfg.AddressMode = soda.Bridging
	case "proxying":
		cfg.AddressMode = soda.Proxying
	default:
		return Config{}, fmt.Errorf("hup: unknown address_mode %q (want bridging|proxying)", fc.AddressMode)
	}
	seen := make(map[string]bool)
	for i, fh := range fc.Hosts {
		if fh.Name == "" {
			return Config{}, fmt.Errorf("hup: host %d has no name", i)
		}
		if seen[fh.Name] {
			return Config{}, fmt.Errorf("hup: duplicate host %q", fh.Name)
		}
		seen[fh.Name] = true
		s, err := fh.spec()
		if err != nil {
			return Config{}, err
		}
		cfg.Hosts = append(cfg.Hosts, s)
	}
	return cfg, nil
}
