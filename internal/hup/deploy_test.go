package hup

import (
	"testing"

	"repro/internal/appsvc"
	"repro/internal/sim"
	"repro/internal/soda"
)

func deployTestbed(t *testing.T) *Testbed {
	t.Helper()
	tb, err := New(Config{Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Agent.RegisterASP("asp", "k"); err != nil {
		t.Fatal(err)
	}
	return tb
}

func smallM() soda.MachineConfig {
	return soda.MachineConfig{CPUMHz: 256, MemoryMB: 64, DiskMB: 256, BandwidthMbps: 2}
}

func TestWebDeploymentTracksPerNodeState(t *testing.T) {
	tb := deployTestbed(t)
	img := WebContentImage("img", 2)
	if err := tb.Publish(img); err != nil {
		t.Fatal(err)
	}
	wd := NewWebDeployment(tb, appsvc.DefaultWebParams(64))
	svc, err := tb.CreateService("k", soda.ServiceSpec{
		Name: "web", ImageName: img.Name, Repository: RepoIP,
		Requirement:  soda.Requirement{N: 2, M: smallM()},
		GuestProfile: img.SystemServices, Behavior: wd.Behavior(),
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := wd.Nodes()
	if len(nodes) != len(svc.Nodes) {
		t.Fatalf("deployment tracked %d nodes, service has %d", len(nodes), len(svc.Nodes))
	}
	for _, n := range nodes {
		if wd.Service(n) == nil || wd.Latency(n) == nil {
			t.Fatalf("node %s missing instruments", n)
		}
	}
	// Serve one request and check the instruments move.
	client := tb.AddClient()
	done := false
	SwitchTarget{Switch: svc.Switch}.Route(client, 256, func() { done = true })
	tb.K.Run()
	if !done {
		t.Fatal("request never completed")
	}
	var served int
	var observed int64
	for _, n := range nodes {
		served += wd.Service(n).Served
		observed += wd.Latency(n).Count()
	}
	if served != 1 || observed != 1 {
		t.Fatalf("served=%d observed=%d", served, observed)
	}
}

func TestCompDeploymentSpins(t *testing.T) {
	tb := deployTestbed(t)
	img := HoneypotImage("img")
	if err := tb.Publish(img); err != nil {
		t.Fatal(err)
	}
	cd := NewCompDeployment(3)
	svc, err := tb.CreateService("k", soda.ServiceSpec{
		Name: "comp", ImageName: img.Name, Repository: RepoIP,
		Requirement:  soda.Requirement{N: 1, M: smallM()},
		GuestProfile: img.SystemServices, Behavior: cd.Behavior(),
	})
	if err != nil {
		t.Fatal(err)
	}
	node := svc.Nodes[0]
	job := cd.Jobs[node.NodeName]
	if job == nil || job.Spinners != 3 {
		t.Fatalf("job = %+v", job)
	}
	host := node.Guest.Host()
	before := host.CPUCyclesFor(node.Guest.UID)
	tb.K.RunFor(2 * sim.Second)
	if host.CPUCyclesFor(node.Guest.UID) <= before {
		t.Fatal("comp deployment not consuming CPU")
	}
}

func TestLogDeploymentWrites(t *testing.T) {
	tb := deployTestbed(t)
	img := HoneypotImage("img")
	if err := tb.Publish(img); err != nil {
		t.Fatal(err)
	}
	ld := NewLogDeployment()
	svc, err := tb.CreateService("k", soda.ServiceSpec{
		Name: "log", ImageName: img.Name, Repository: RepoIP,
		Requirement:  soda.Requirement{N: 1, M: smallM()},
		GuestProfile: img.SystemServices, Behavior: ld.Behavior(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.K.RunFor(2 * sim.Second)
	job := ld.Jobs[svc.Nodes[0].NodeName]
	if job == nil || job.Writes == 0 {
		t.Fatalf("log job = %+v", job)
	}
	job.Stop()
}

func TestHoneypotDeploymentVictims(t *testing.T) {
	tb := deployTestbed(t)
	img := HoneypotImage("img")
	if err := tb.Publish(img); err != nil {
		t.Fatal(err)
	}
	hd := NewHoneypotDeployment(tb)
	svc, err := tb.CreateService("k", soda.ServiceSpec{
		Name: "hp", ImageName: img.Name, Repository: RepoIP,
		Requirement:  soda.Requirement{N: 1, M: smallM()},
		GuestProfile: img.SystemServices, Behavior: hd.Behavior(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hd.Victims()) != 1 {
		t.Fatalf("victims = %v", hd.Victims())
	}
	v := hd.Victim(svc.Nodes[0].NodeName)
	if v == nil {
		t.Fatal("victim missing")
	}
	crashed := false
	v.HandleAttack(func() { crashed = true })
	tb.K.Run()
	if !crashed || v.Guest.Alive() {
		t.Fatal("attack did not crash the victim")
	}
	// Honeypots bind no switch handler: routed requests drop.
	client := tb.AddClient()
	SwitchTarget{Switch: svc.Switch}.Route(client, 64, nil)
	tb.K.Run()
	if svc.Switch.Routed() != 0 {
		t.Fatal("honeypot served a routed request")
	}
}
