package hup

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/appsvc"
	"repro/internal/flight"
	"repro/internal/sim"
	"repro/internal/soda"
	"repro/internal/workload"
)

// flightDetector mirrors the tight health config the soda tests use so
// a crash is detected and recovered within a few virtual seconds.
func flightDetector() soda.HealthConfig {
	return soda.HealthConfig{
		HeartbeatEvery: 100 * sim.Millisecond,
		SuspectAfter:   300 * sim.Millisecond,
		ConfirmAfter:   600 * sim.Millisecond,
		CheckEvery:     50 * sim.Millisecond,
		RetryRecovery:  500 * sim.Millisecond,
		EjectAfter:     3,
		ProbeAfter:     200 * sim.Millisecond,
	}
}

// runFlightCrashScenario runs one seeded host-crash run with the flight
// recorder on and returns the recorder plus the marshalled sealed
// incident bundles — the determinism test compares these byte-for-byte
// across two runs.
func runFlightCrashScenario(t *testing.T, seed uint64) (*flight.Recorder, []byte) {
	t.Helper()
	tb, err := New(Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Agent.RegisterASP("asp", "k"); err != nil {
		t.Fatal(err)
	}
	tb.EnableSelfHealing(flightDetector())
	rec, _ := tb.EnableFlightRecorder(FlightOptions{
		PostWindow:   5 * sim.Second,
		CaptureEvery: sim.Second,
	})

	img := WebContentImage("img", 2)
	if err := tb.Publish(img); err != nil {
		t.Fatal(err)
	}
	wd := NewWebDeployment(tb, appsvc.DefaultWebParams(8))
	svc, err := tb.CreateService("k", soda.ServiceSpec{
		Name: "genome", ImageName: img.Name, Repository: RepoIP,
		Requirement:  soda.Requirement{N: 2, M: smallM()},
		GuestProfile: img.SystemServices, Behavior: wd.Behavior(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(tb.K, SwitchTarget{Switch: svc.Switch}, tb.AddClient(), tb.RNG.Split())
	gen.RunClosedLoop(2, 50*sim.Millisecond)

	tb.K.RunFor(2 * sim.Second) // steady state on the ring
	tb.Daemons[1].Crash()
	tb.K.RunFor(10 * sim.Second) // detect (~0.6s), recover, seal (+5s)
	gen.Stop()

	var sealed []*flight.Incident
	for _, inc := range rec.Incidents() {
		if !inc.Open {
			sealed = append(sealed, inc)
		}
	}
	blob, err := json.Marshal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	return rec, blob
}

// TestFlightRecorderCapturesCrashIncident is the subsystem acceptance
// run: a host crash must auto-capture a sealed host-dead incident whose
// records span the whole failure story — detection through recovery —
// with forensic context (metric delta, route tables, span subtree)
// attached.
func TestFlightRecorderCapturesCrashIncident(t *testing.T) {
	rec, _ := runFlightCrashScenario(t, 7)

	var dead *flight.Incident
	for _, inc := range rec.Incidents() {
		if inc.Trigger == "host-dead" {
			dead = inc
		}
	}
	if dead == nil {
		t.Fatalf("no host-dead incident captured; have %v", rec.StatsNow())
	}
	if dead.Open {
		t.Fatal("host-dead incident never sealed")
	}
	if dead.Subject != "tacoma" {
		t.Fatalf("incident subject = %q, want crashed host tacoma", dead.Subject)
	}
	// The bundle must tell the whole story: suspicion and confirmation
	// in the pre/post context, recovery completion in the post window.
	for _, msg := range []string{"host-suspected", "host-dead", "node-recovered"} {
		if !dead.HasRecord(msg) {
			var msgs []string
			for _, r := range dead.Records {
				msgs = append(msgs, r.Msg)
			}
			t.Fatalf("incident records missing %q; have %v", msg, msgs)
		}
	}
	if len(dead.Records) == 0 || dead.MetricDelta == nil {
		t.Fatal("incident missing records or metric delta")
	}
	if len(dead.Routes) == 0 {
		t.Fatal("incident missing route tables")
	}
	if len(dead.Spans) == 0 {
		t.Fatal("incident missing span subtree")
	}

	// The ring itself keeps flowing after the incident seals.
	if tail := rec.Tail(16, flight.LevelDebug, ""); len(tail) == 0 {
		t.Fatal("ring empty after run")
	}
	// A host-suspected incident for the same host must also exist (its
	// own trigger key), but repeated suspicion within the cooldown must
	// not flood the store.
	n := 0
	for _, inc := range rec.Incidents() {
		if inc.Trigger == "host-suspected" && inc.Subject == "tacoma" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("host-suspected incidents for tacoma = %d, want 1", n)
	}
}

// TestFlightRecorderDeterministicAcrossRuns: two same-seed runs under
// virtual time must produce byte-identical sealed incident bundles —
// the property that makes flight-recorder output diffable in CI.
func TestFlightRecorderDeterministicAcrossRuns(t *testing.T) {
	_, a := runFlightCrashScenario(t, 11)
	_, b := runFlightCrashScenario(t, 11)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed incident bundles differ:\nrun A: %s\nrun B: %s", a, b)
	}
	_, c := runFlightCrashScenario(t, 12)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical bundles; clock not advancing?")
	}
}
