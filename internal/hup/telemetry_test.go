package hup

import (
	"math"
	"testing"

	"repro/internal/appsvc"
	"repro/internal/soda"
	"repro/internal/telemetry"
)

// within reports |a-b| <= tol; virtual-time spans should agree exactly,
// but compare through float seconds with a nanosecond of slack.
func within(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestSpanTreeReproducesPrimingBreakdown is the acceptance check for the
// telemetry layer: one priming run under the tracer must yield the
// paper's Table 2 stage breakdown — download, boot, bootstrap — from the
// span tree alone, with parent-child timing consistent with the
// NodeInfo measurements the daemon reports independently.
func TestSpanTreeReproducesPrimingBreakdown(t *testing.T) {
	tb := deployTestbed(t)
	_, tracer := tb.EnableTelemetry()
	img := WebContentImage("img", 2)
	if err := tb.Publish(img); err != nil {
		t.Fatal(err)
	}
	wd := NewWebDeployment(tb, appsvc.DefaultWebParams(64))
	svc, err := tb.CreateService("k", soda.ServiceSpec{
		Name: "web", ImageName: img.Name, Repository: RepoIP,
		Requirement:  soda.Requirement{N: 2, M: smallM()},
		GuestProfile: img.SystemServices, Behavior: wd.Behavior(),
	})
	if err != nil {
		t.Fatal(err)
	}

	roots := tracer.Roots()
	if len(roots) != 1 {
		t.Fatalf("root spans = %d, want 1", len(roots))
	}
	root := roots[0]
	if root.Name != "service.create" || root.Attrs["service"] != "web" || root.Open {
		t.Fatalf("root = %+v", root)
	}

	adm, ok := root.Child("admission")
	if !ok {
		t.Fatal("no admission span")
	}
	if adm.StartSec < root.StartSec || adm.EndSec > root.EndSec {
		t.Fatalf("admission [%g,%g] outside root [%g,%g]",
			adm.StartSec, adm.EndSec, root.StartSec, root.EndSec)
	}

	var primes []telemetry.SpanView
	for _, c := range root.Children {
		if c.Name == "prime" {
			primes = append(primes, c)
		}
	}
	if len(primes) != len(svc.Nodes) {
		t.Fatalf("prime spans = %d, want %d", len(primes), len(svc.Nodes))
	}

	const tol = 1e-9
	for _, prime := range primes {
		node := prime.Attrs["node"]
		info, ok := svc.NodeByName(node)
		if !ok {
			t.Fatalf("prime span names unknown node %q", node)
		}
		if prime.Attrs["host"] != info.HostName {
			t.Fatalf("prime host = %q, want %q", prime.Attrs["host"], info.HostName)
		}
		// Admission fully precedes priming.
		if prime.StartSec < adm.EndSec {
			t.Fatalf("prime started at %g before admission ended at %g", prime.StartSec, adm.EndSec)
		}
		// The daemon's slice reservation is recorded (synchronous in
		// virtual time, so possibly zero-width, but present and closed).
		if alloc, ok := prime.Child("slice.alloc"); !ok || alloc.Open {
			t.Fatalf("prime %s slice.alloc span = %+v, ok = %v", node, alloc, ok)
		}

		// The Table 2 stages, in order, each nested in the prime span.
		stages := []string{"image.download", "rootfs.tailor", "guest.boot", "service.bootstrap"}
		views := make(map[string]telemetry.SpanView, len(stages))
		prevEnd := prime.StartSec
		for _, name := range stages {
			sv, ok := prime.Child(name)
			if !ok {
				t.Fatalf("prime %s has no %s span", node, name)
			}
			if sv.Open {
				t.Fatalf("%s span still open", name)
			}
			if sv.StartSec < prime.StartSec-tol || sv.EndSec > prime.EndSec+tol {
				t.Fatalf("%s [%g,%g] outside prime [%g,%g]",
					name, sv.StartSec, sv.EndSec, prime.StartSec, prime.EndSec)
			}
			if sv.StartSec < prevEnd-tol {
				t.Fatalf("%s started at %g before previous stage ended at %g", name, sv.StartSec, prevEnd)
			}
			prevEnd = sv.EndSec
			views[name] = sv
		}

		// The span durations must agree with the daemon's own
		// measurements: download time exactly, and the three bootstrap
		// stages together must account for the full boot time.
		if got, want := views["image.download"].Duration(), info.DownloadTime.Seconds(); !within(got, want, tol) {
			t.Fatalf("download span = %gs, NodeInfo says %gs", got, want)
		}
		bootSum := views["rootfs.tailor"].Duration() +
			views["guest.boot"].Duration() +
			views["service.bootstrap"].Duration()
		if want := info.BootTime.Seconds(); !within(bootSum, want, tol) {
			t.Fatalf("tailor+boot+bootstrap = %gs, NodeInfo boot time %gs", bootSum, want)
		}
		// The stages are substantial, not degenerate zero-width marks.
		for _, name := range stages {
			if views[name].Duration() <= 0 {
				t.Fatalf("%s span has non-positive duration %g", name, views[name].Duration())
			}
		}
	}

	if _, ok := root.Child("switch.build"); !ok {
		t.Fatal("no switch.build span")
	}
}

// TestTelemetryMetricsFollowLifecycle checks the registry's counters and
// gauges through create → traffic → teardown.
func TestTelemetryMetricsFollowLifecycle(t *testing.T) {
	tb := deployTestbed(t)
	reg, tracer := tb.EnableTelemetry()
	img := WebContentImage("img", 2)
	if err := tb.Publish(img); err != nil {
		t.Fatal(err)
	}
	wd := NewWebDeployment(tb, appsvc.DefaultWebParams(64))
	svc, err := tb.CreateService("k", soda.ServiceSpec{
		Name: "web", ImageName: img.Name, Repository: RepoIP,
		Requirement:  soda.Requirement{N: 2, M: smallM()},
		GuestProfile: img.SystemServices, Behavior: wd.Behavior(),
	})
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("soda_master_admitted_total"); got != 1 {
		t.Fatalf("admitted = %d", got)
	}
	if got := snap.Gauge("soda_master_services"); got != 1 {
		t.Fatalf("services gauge = %g", got)
	}
	var primed, bootObs int64
	for _, c := range snap.Counters {
		if c.Name == "soda_daemon_primed_total" {
			primed += c.Value
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == "soda_prime_boot_seconds" {
			bootObs += h.Count
		}
	}
	if primed != 2 || bootObs != 2 {
		t.Fatalf("primed = %d, boot observations = %d, want 2 and 2", primed, bootObs)
	}

	// Drive traffic; the switch's counters and histograms must agree
	// with its accessors.
	client := tb.AddClient()
	const requests = 20
	doneCount := 0
	for i := 0; i < requests; i++ {
		SwitchTarget{Switch: svc.Switch}.Route(client, 256, func() { doneCount++ })
	}
	tb.K.Run()
	if doneCount != requests {
		t.Fatalf("completed %d/%d requests", doneCount, requests)
	}
	snap = reg.Snapshot()
	svcLabel := telemetry.L("service", "web")
	if got := snap.Counter("soda_switch_routed_total", svcLabel); int(got) != svc.Switch.Routed() {
		t.Fatalf("routed counter = %d, accessor = %d", got, svc.Switch.Routed())
	}
	var latCount int64
	for _, h := range snap.Histograms {
		if h.Name == "soda_switch_latency_seconds" && h.Labels["service"] == "web" {
			latCount = h.Count
		}
	}
	if int(latCount) != requests {
		t.Fatalf("latency observations = %d, want %d", latCount, requests)
	}

	if err := tb.Teardown("k", "web"); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Gauge("soda_master_services"); got != 0 {
		t.Fatalf("services gauge after teardown = %g", got)
	}
	if got := snap.Counter("soda_master_torndown_total"); got != 1 {
		t.Fatalf("torndown = %d", got)
	}
	found := false
	for _, r := range tracer.Roots() {
		if r.Name == "service.teardown" {
			found = true
		}
	}
	if !found {
		t.Fatal("no service.teardown span")
	}
}

// TestSpanEventsBridgeToObservers checks that an instrumented Master
// feeds ended spans into the existing Event/Observer mechanism.
func TestSpanEventsBridgeToObservers(t *testing.T) {
	tb := deployTestbed(t)
	tb.EnableTelemetry()
	var rec soda.EventRecorder
	tb.Master.Observe(rec.Record)
	img := WebContentImage("img", 2)
	if err := tb.Publish(img); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateService("k", soda.ServiceSpec{
		Name: "web", ImageName: img.Name, Repository: RepoIP,
		Requirement:  soda.Requirement{N: 1, M: smallM()},
		GuestProfile: img.SystemServices,
	}); err != nil {
		t.Fatal(err)
	}
	spans := rec.CountOf(soda.EventSpanEnded)
	// At least admission, download, tailor, boot, bootstrap, prime,
	// switch.build, and the root.
	if spans < 8 {
		t.Fatalf("span events = %d, want >= 8", spans)
	}
	// Other lifecycle events still flow alongside.
	if rec.CountOf(soda.EventServiceActive) != 1 {
		t.Fatalf("kinds = %v", rec.Kinds())
	}
}
