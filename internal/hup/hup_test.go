package hup

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/hostos"
	"repro/internal/simnet"
	"repro/internal/soda"
	"repro/internal/uml"
)

func TestNewDefaultIsPaperTestbed(t *testing.T) {
	tb, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Hosts) != 2 || tb.Hosts[0].Spec.Name != "seattle" || tb.Hosts[1].Spec.Name != "tacoma" {
		t.Fatalf("hosts = %v", tb.Hosts)
	}
	if len(tb.Daemons) != 2 || tb.Master == nil || tb.Agent == nil || tb.Repo == nil {
		t.Fatal("control plane incomplete")
	}
	// Control-plane addresses are bridged.
	for _, ip := range []simnet.IP{MasterIP, AgentIP, RepoIP} {
		if _, ok := tb.Net.Lookup(ip); !ok {
			t.Fatalf("%s not bridged", ip)
		}
	}
	// Host addresses are bridged too.
	for i := range tb.Hosts {
		ip := simnet.IP(fmt.Sprintf("128.10.9.%d", 10+i))
		if _, ok := tb.Net.Lookup(ip); !ok {
			t.Fatalf("host IP %s not bridged", ip)
		}
	}
}

func TestAddClientGivesRoutableAddresses(t *testing.T) {
	tb, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := tb.AddClient()
	b := tb.AddClient()
	if a == b {
		t.Fatalf("duplicate client IPs %s", a)
	}
	delivered := false
	if err := tb.Net.Transfer(a, b, 100, func() { delivered = true }); err != nil {
		t.Fatal(err)
	}
	tb.K.Run()
	if !delivered {
		t.Fatal("client-to-client transfer failed")
	}
}

func TestCustomHostsAndScheduler(t *testing.T) {
	tb, err := New(Config{
		Hosts: []hostos.Spec{hostos.Tacoma()},
		Seed:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Hosts) != 1 || tb.Hosts[0].Spec.Name != "tacoma" {
		t.Fatal("custom host list ignored")
	}
	// Default scheduler is proportional.
	if !strings.Contains(tb.Hosts[0].Scheduler().Name(), "proportional") {
		t.Fatalf("default scheduler = %s", tb.Hosts[0].Scheduler().Name())
	}
}

func TestTable2CasesMatchPaperRows(t *testing.T) {
	cases := Table2Cases()
	if len(cases) != 4 {
		t.Fatalf("cases = %d", len(cases))
	}
	wantSizes := map[string]int{"S_I": 29, "S_II": 15, "S_III": 400, "S_IV": 253}
	for _, c := range cases {
		img := c.Image("x")
		if got := img.SizeMB(); got != wantSizes[c.Label] {
			t.Errorf("%s image = %dMB, want %d", c.Label, got, wantSizes[c.Label])
		}
		if c.PaperSeattleSec <= 0 || c.PaperTacomaSec <= c.PaperSeattleSec {
			t.Errorf("%s paper values wrong: %v/%v", c.Label, c.PaperSeattleSec, c.PaperTacomaSec)
		}
	}
}

func TestImagesValidateAndCarryProfiles(t *testing.T) {
	web := WebContentImage("w", 16)
	if err := web.Validate(); err != nil {
		t.Fatal(err)
	}
	if web.SizeMB() != 29+16 {
		t.Fatalf("web image = %dMB", web.SizeMB())
	}
	if len(web.RootFS.ListDir("/var/www/data")) != 16*32 {
		t.Fatal("dataset file count wrong")
	}
	hp := HoneypotImage("h")
	if !strings.Contains(hp.ServiceCommand, "ghttpd") {
		t.Fatalf("honeypot serves %s", hp.ServiceCommand)
	}
	if len(FullServerImage("f").SystemServices) != len(uml.ProfileFullServer()) {
		t.Fatal("full server profile incomplete")
	}
}

func TestSyncCreateHelpersSurfaceErrors(t *testing.T) {
	tb, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Agent.RegisterASP("a", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateService("k", soda.ServiceSpec{Name: "bad"}); err == nil {
		t.Fatal("bad spec accepted")
	}
	if err := tb.Teardown("k", "ghost"); err == nil {
		t.Fatal("teardown of unknown service accepted")
	}
	if _, err := tb.Resize("k", "ghost", 2); err == nil {
		t.Fatal("resize of unknown service accepted")
	}
}
