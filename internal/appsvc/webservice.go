package appsvc

import (
	"fmt"

	"repro/internal/cycles"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// WebParams is the cost model of the static web content service (the
// paper's S_I). Requests are served by a syscall sequence plus chunked
// read/send I/O and a data copy; files outside the buffer cache are read
// from disk. Constants are documented modelling choices (DESIGN.md §5).
type WebParams struct {
	// FileBytes is the size of each served file.
	FileBytes int64
	// DatasetMB is the total dataset size — the x-axis of Figures 4/6.
	// Larger datasets overflow the buffer cache and push requests to disk.
	DatasetMB int
	// CacheMB is the buffer cache available for the dataset.
	CacheMB int
	// ChunkBytes is the read/send loop's buffer size.
	ChunkBytes int64
	// CopyCyclesPerByte is the user-space handling cost per payload byte.
	CopyCyclesPerByte float64
	// GuestIOCyclesPerByte is the *extra* per-byte cost inside a guest
	// (the UML block/net drivers double-buffer every payload byte through
	// the host, and the guest's page cache is managed by intercepted
	// syscalls).
	GuestIOCyclesPerByte float64
	// ExtraCyclesPerRequest is additional application work per request
	// (templating, CGI); 0 for the paper's static content service.
	ExtraCyclesPerRequest float64
}

// DefaultWebParams returns the calibrated web content service model with
// the given dataset size.
func DefaultWebParams(datasetMB int) WebParams {
	return WebParams{
		FileBytes:            8 << 10,
		DatasetMB:            datasetMB,
		CacheMB:              128,
		ChunkBytes:           8 << 10,
		CopyCyclesPerByte:    2.0,
		GuestIOCyclesPerByte: 12.0,
	}
}

// fixedSyscalls is the per-request syscall sequence outside the I/O loop:
// accept/recv the request, open/stat the file, close, log.
var fixedSyscalls = []cycles.Syscall{
	cycles.Socket, cycles.Recv, cycles.Open, cycles.Read,
	cycles.Gettimeofday, cycles.Close, cycles.Write, cycles.Getpid,
}

// WebService serves the static dataset from one backend.
type WebService struct {
	// Backend is where request processing executes.
	Backend Backend
	// Params is the request cost model.
	Params WebParams

	net *simnet.Network
	rng *sim.RNG

	// Served counts completed requests; Failed counts requests dropped
	// because the backend died.
	Served, Failed int
}

// NewWebService creates a web content service on a backend.
func NewWebService(net *simnet.Network, b Backend, params WebParams, rng *sim.RNG) *WebService {
	if params.FileBytes <= 0 || params.ChunkBytes <= 0 {
		panic(fmt.Sprintf("appsvc: bad web params %+v", params))
	}
	return &WebService{Backend: b, Params: params, net: net, rng: rng}
}

// RequestCPUCycles returns the CPU cost of serving one request on the
// service's backend: the fixed syscall sequence, two syscalls (read +
// send) per chunk, and the per-byte copy cost. This is where guest and
// native deployments diverge — which is exactly the application-level
// slow-down Figure 6 measures.
func (w *WebService) RequestCPUCycles() cycles.Cycles {
	var c cycles.Cycles
	for _, s := range fixedSyscalls {
		c += w.Backend.SyscallCost(s)
	}
	chunks := (w.Params.FileBytes + w.Params.ChunkBytes - 1) / w.Params.ChunkBytes
	c += cycles.Cycles(chunks) * (w.Backend.SyscallCost(cycles.Read) + w.Backend.SyscallCost(cycles.Send))
	perByte := w.Params.CopyCyclesPerByte
	if _, guest := w.Backend.(*GuestBackend); guest {
		perByte += w.Params.GuestIOCyclesPerByte
	}
	c += cycles.Cycles(perByte*float64(w.Params.FileBytes) + w.Params.ExtraCyclesPerRequest)
	return c
}

// CacheHitProbability returns the chance a request's file is in the
// buffer cache.
func (w *WebService) CacheHitProbability() float64 {
	if w.Params.DatasetMB <= 0 || w.Params.DatasetMB <= w.Params.CacheMB {
		return 1
	}
	return float64(w.Params.CacheMB) / float64(w.Params.DatasetMB)
}

// HandleRequest serves one request arriving from clientIP: CPU
// processing, a disk read on a cache miss, then the response transfer
// from the backend's address. onDone fires when the response is fully
// delivered; a false return means the backend is down and the request
// failed immediately.
func (w *WebService) HandleRequest(clientIP simnet.IP, onDone func()) bool {
	if !w.Backend.Alive() {
		w.Failed++
		return false
	}
	respond := func() {
		err := w.net.Transfer(w.Backend.IP(), clientIP, w.Params.FileBytes, func() {
			w.Served++
			if onDone != nil {
				onDone()
			}
		})
		if err != nil {
			w.Failed++
		}
	}
	afterCPU := func() {
		hit := w.rng.Bool(w.CacheHitProbability())
		if hit {
			respond()
			return
		}
		if !w.Backend.ReadDisk(w.Params.FileBytes, respond) {
			w.Failed++
		}
	}
	if !w.Backend.ExecCPU(w.RequestCPUCycles(), afterCPU) {
		w.Failed++
		return false
	}
	return true
}
