// Package appsvc models the application services the paper deploys on
// SODA: the static web content service of §5, the honeypot's vulnerable
// ghttpd, and the comp/log background loads of the resource-isolation
// experiment. A service runs on a Backend — either inside a UML guest
// (paying the interception tax) or directly on the host OS (the Figure 6
// baselines).
package appsvc

import (
	"repro/internal/cycles"
	"repro/internal/hostos"
	"repro/internal/simnet"
	"repro/internal/uml"
)

// Backend abstracts where a service's work executes. The two
// implementations differ in exactly one way: the syscall price list.
type Backend interface {
	// Name labels the backend in measurements.
	Name() string
	// IP is the address responses are sent from.
	IP() simnet.IP
	// Host returns the physical host, for clock/disk parameters.
	Host() *hostos.Host
	// ExecCPU runs a CPU burst, reporting whether it was accepted.
	ExecCPU(c cycles.Cycles, onDone func()) bool
	// SyscallCost prices one system call on this backend.
	SyscallCost(s cycles.Syscall) cycles.Cycles
	// ReadDisk performs file I/O, reporting whether it was accepted.
	ReadDisk(n int64, onDone func()) bool
	// Alive reports whether the backend can accept work.
	Alive() bool
}

// GuestBackend runs the service inside a UML guest — the deployment SODA
// creates (Figure 6 scenario 1).
type GuestBackend struct {
	G *uml.Guest
}

// Name implements Backend.
func (b *GuestBackend) Name() string { return b.G.NodeName }

// IP implements Backend.
func (b *GuestBackend) IP() simnet.IP { return b.G.IP }

// Host implements Backend.
func (b *GuestBackend) Host() *hostos.Host { return b.G.Host() }

// ExecCPU implements Backend.
func (b *GuestBackend) ExecCPU(c cycles.Cycles, onDone func()) bool { return b.G.ExecCPU(c, onDone) }

// SyscallCost implements Backend: guests pay the UML interception tax.
func (b *GuestBackend) SyscallCost(s cycles.Syscall) cycles.Cycles { return cycles.UMLCost(s) }

// ReadDisk implements Backend.
func (b *GuestBackend) ReadDisk(n int64, onDone func()) bool { return b.G.ReadDisk(n, onDone) }

// Alive implements Backend.
func (b *GuestBackend) Alive() bool { return b.G.Alive() && b.G.Workers() > 0 }

// NativeBackend runs the service directly on the host OS — the paper's
// Figure 6 scenarios 2 and 3, with no guest-OS slow-down and no
// administration/fault isolation.
type NativeBackend struct {
	// Label names the deployment ("host-direct").
	Label string
	// Addr is the host's own bridged address.
	Addr simnet.IP

	h     *hostos.Host
	procs []*hostos.Process
	next  int
}

// NewNativeBackend spawns worker processes directly on the host.
func NewNativeBackend(h *hostos.Host, label string, addr simnet.IP, uid, workers int) *NativeBackend {
	b := &NativeBackend{Label: label, Addr: addr, h: h}
	for i := 0; i < workers; i++ {
		b.procs = append(b.procs, h.Spawn(label, uid))
	}
	return b
}

// Name implements Backend.
func (b *NativeBackend) Name() string { return b.Label }

// IP implements Backend.
func (b *NativeBackend) IP() simnet.IP { return b.Addr }

// Host implements Backend.
func (b *NativeBackend) Host() *hostos.Host { return b.h }

func (b *NativeBackend) worker() *hostos.Process {
	for i := 0; i < len(b.procs); i++ {
		p := b.procs[b.next%len(b.procs)]
		b.next++
		if p.Alive() {
			return p
		}
	}
	return nil
}

// ExecCPU implements Backend.
func (b *NativeBackend) ExecCPU(c cycles.Cycles, onDone func()) bool {
	p := b.worker()
	if p == nil {
		return false
	}
	p.Exec(c, onDone)
	return true
}

// SyscallCost implements Backend: native processes pay host-OS prices.
func (b *NativeBackend) SyscallCost(s cycles.Syscall) cycles.Cycles { return cycles.HostCost(s) }

// ReadDisk implements Backend.
func (b *NativeBackend) ReadDisk(n int64, onDone func()) bool {
	p := b.worker()
	if p == nil {
		return false
	}
	p.ReadDisk(n, onDone)
	return true
}

// Alive implements Backend.
func (b *NativeBackend) Alive() bool { return b.worker() != nil }
