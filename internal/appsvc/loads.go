package appsvc

import (
	"repro/internal/cycles"
	"repro/internal/simnet"
	"repro/internal/uml"
)

// HoneypotService is the paper's deliberately "dangerous" service (§5):
// a vulnerable victim server (ghttpd 1.4, which has a remotely
// exploitable buffer overflow) run inside its own virtual service node so
// attacks can be studied without endangering co-hosted services.
type HoneypotService struct {
	// Guest is the victim's virtual service node.
	Guest *uml.Guest

	net *simnet.Network
	// Attacks counts malicious requests received; Crashes counts the
	// times the victim was taken down.
	Attacks, Crashes int
}

// NewHoneypot wraps a guest running the victim server.
func NewHoneypot(net *simnet.Network, g *uml.Guest) *HoneypotService {
	return &HoneypotService{Guest: g, net: net}
}

// HandleAttack processes one malicious request: the overflow executes
// some victim CPU, then crashes the guest OS — and only the guest OS.
// onCrashed fires once the node is down. Returns false if the victim is
// already dead (the attacker finds the port closed).
func (h *HoneypotService) HandleAttack(onCrashed func()) bool {
	if !h.Guest.Alive() {
		return false
	}
	h.Attacks++
	// The exploit's shellcode runs briefly before binding its shell.
	ok := h.Guest.ExecCPU(cycles.Cycles(5e6), func() {
		if h.Guest.Alive() {
			h.Crashes++
			h.Guest.Crash("ghttpd-1.4 buffer overflow: remote shell bound")
		}
		if onCrashed != nil {
			onCrashed()
		}
	})
	return ok
}

// Respawn models the honeypot operator rebooting the victim after a
// crash so the next attack finds a live target. The paper's experiment
// has the honeypot "constantly attacked and crashed".
func (h *HoneypotService) Respawn(g *uml.Guest) { h.Guest = g }

// CompJob is the resource-isolation experiment's computation-intensive
// load: "infinite loop of dummy arithmetic operations" (§5). It runs one
// or more spinner processes inside a guest's userid.
type CompJob struct {
	// Spinners is the number of spinning processes started.
	Spinners int
}

// StartComp starts n spinner processes inside the guest's service node.
func StartComp(g *uml.Guest, n int) *CompJob {
	for i := 0; i < n; i++ {
		p := g.Host().Spawn("comp-loop", g.UID)
		p.Spin()
	}
	return &CompJob{Spinners: n}
}

// LogJob is the experiment's logging load: "logging via continuous disk
// writes" (§5). Each record is formatted (CPU) then written (disk), and
// each completed write immediately issues the next, keeping the node
// backlogged beyond its CPU share.
type LogJob struct {
	// Writes counts completed disk writes.
	Writes int

	stopped bool
}

// StartLog starts a continuous write loop of writeBytes-sized records,
// each preceded by formatCycles of CPU (serialisation, checksumming).
// Writes are buffered — the process does not block on the disk, matching
// Linux's write-behind page cache — so the logger's CPU demand is
// continuous and exceeds its share, as the Figure 5 experiment requires
// ("their loads are higher than their respective shares").
func StartLog(g *uml.Guest, writeBytes int64, formatCycles cycles.Cycles) *LogJob {
	j := &LogJob{}
	p := g.Host().Spawn("logd", g.UID)
	var loop func()
	loop = func() {
		if j.stopped || !p.Alive() {
			return
		}
		p.Exec(formatCycles, func() {
			p.WriteDisk(writeBytes, func() { j.Writes++ })
			loop()
		})
	}
	loop()
	return j
}

// Stop ends the write loop.
func (j *LogJob) Stop() { j.stopped = true }

// SpinService turns a guest into a pure CPU hog: every worker spins.
// Used by tests that need a fully backlogged node without the comp/log
// distinction.
func SpinService(g *uml.Guest) {
	for i := 0; i < g.Workers(); i++ {
		g.ExecCPU(cycles.Cycles(1<<62), nil)
	}
}
