package appsvc

import (
	"math"
	"testing"

	"repro/internal/cycles"
	"repro/internal/hostos"
	"repro/internal/image"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/uml"
)

func bootGuest(t *testing.T, k *sim.Kernel, h *hostos.Host, name string, uid int, ip simnet.IP) *uml.Guest {
	t.Helper()
	img := image.NewBuilder(name+"-img").
		WithService("/usr/sbin/httpd", 1<<20, 8080).
		WithWorkers(2).
		WithSystemServices(uml.ProfileTomsrtbt()...).
		PadToMB(15).
		MustBuild()
	var g *uml.Guest
	uml.Boot(uml.BootRequest{
		Host: h, UID: uid, IP: ip, NodeName: name,
		Image: img, Profile: uml.ProfileTomsrtbt(),
	}, func(r *uml.BootReport) { g = r.Guest }, func(err error) { t.Fatal(err) })
	k.Run()
	if g == nil {
		t.Fatal("boot did not complete")
	}
	return g
}

func webFixture(t *testing.T, datasetMB int) (*sim.Kernel, *simnet.Network, *hostos.Host, *uml.Guest, simnet.IP) {
	t.Helper()
	k := sim.NewKernel()
	net := simnet.New(k, 10*sim.Microsecond)
	h := hostos.MustNew(k, hostos.Seattle(), nil)
	nic := net.MustAttach("seattle", 100)
	client := net.MustAttach("client", 100)
	if err := client.AddIP("10.0.1.1"); err != nil {
		t.Fatal(err)
	}
	if err := nic.AddIP("10.0.0.5"); err != nil {
		t.Fatal(err)
	}
	g := bootGuest(t, k, h, "web-1", 1000, "10.0.0.5")
	return k, net, h, g, "10.0.1.1"
}

func TestGuestBackendIdentity(t *testing.T) {
	_, _, h, g, _ := webFixture(t, 64)
	b := &GuestBackend{G: g}
	if b.Name() != "web-1" || b.IP() != "10.0.0.5" || b.Host() != h {
		t.Fatal("backend identity wrong")
	}
	if !b.Alive() {
		t.Fatal("backend not alive after boot")
	}
	g.Crash("x")
	if b.Alive() {
		t.Fatal("backend alive after crash")
	}
}

func TestSyscallPricingDiffersByBackend(t *testing.T) {
	k := sim.NewKernel()
	h := hostos.MustNew(k, hostos.Seattle(), nil)
	native := NewNativeBackend(h, "native", "10.0.0.9", 500, 2)
	if native.SyscallCost(cycles.Getpid) != cycles.HostCost(cycles.Getpid) {
		t.Fatal("native backend mispriced")
	}
	gb := &GuestBackend{}
	if gb.SyscallCost(cycles.Getpid) != cycles.UMLCost(cycles.Getpid) {
		t.Fatal("guest backend mispriced")
	}
}

func TestRequestCPUCyclesGuestExceedsNative(t *testing.T) {
	k, net, h, g, _ := webFixture(t, 64)
	params := DefaultWebParams(64)
	guestWS := NewWebService(net, &GuestBackend{G: g}, params, sim.NewRNG(1))
	native := NewNativeBackend(h, "native", "10.0.0.5", 500, 2)
	nativeWS := NewWebService(net, native, params, sim.NewRNG(1))
	gc, nc := guestWS.RequestCPUCycles(), nativeWS.RequestCPUCycles()
	if gc <= nc {
		t.Fatalf("guest request cost %d not above native %d", gc, nc)
	}
	// The gap must be far below the raw syscall ratio (~25x): this is the
	// application-level moderation Figure 6 shows.
	if ratio := float64(gc) / float64(nc); ratio > 15 {
		t.Fatalf("request cost ratio %.1f implausibly high", ratio)
	}
	_ = k
}

func TestCacheHitProbability(t *testing.T) {
	_, net, _, g, _ := webFixture(t, 64)
	mk := func(dataset int) *WebService {
		return NewWebService(net, &GuestBackend{G: g}, DefaultWebParams(dataset), sim.NewRNG(1))
	}
	if p := mk(64).CacheHitProbability(); p != 1 {
		t.Fatalf("64MB dataset hit prob = %v, want 1 (fits in cache)", p)
	}
	if p := mk(256).CacheHitProbability(); math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("256MB dataset hit prob = %v, want 0.5", p)
	}
	if p := mk(0).CacheHitProbability(); p != 1 {
		t.Fatalf("zero dataset hit prob = %v", p)
	}
}

func TestHandleRequestDeliversResponse(t *testing.T) {
	k, net, _, g, client := webFixture(t, 64)
	ws := NewWebService(net, &GuestBackend{G: g}, DefaultWebParams(64), sim.NewRNG(1))
	done := false
	if !ws.HandleRequest(client, func() { done = true }) {
		t.Fatal("request rejected")
	}
	k.Run()
	if !done || ws.Served != 1 || ws.Failed != 0 {
		t.Fatalf("done=%v served=%d failed=%d", done, ws.Served, ws.Failed)
	}
}

func TestHandleRequestCacheMissesAreSlower(t *testing.T) {
	mean := func(datasetMB int) float64 {
		k, net, _, g, client := webFixture(t, datasetMB)
		ws := NewWebService(net, &GuestBackend{G: g}, DefaultWebParams(datasetMB), sim.NewRNG(1))
		var total sim.Duration
		const n = 50
		var issue func(i int)
		issue = func(i int) {
			if i == n {
				return
			}
			start := k.Now()
			ws.HandleRequest(client, func() {
				total += k.Now().Sub(start)
				issue(i + 1)
			})
		}
		issue(0)
		k.Run()
		return (total / n).Seconds()
	}
	hit, missy := mean(64), mean(4096)
	if missy < hit*2 {
		t.Fatalf("large-dataset requests (%.4fs) not clearly slower than cached (%.4fs)", missy, hit)
	}
}

func TestHandleRequestFailsWhenGuestDead(t *testing.T) {
	k, net, _, g, client := webFixture(t, 64)
	ws := NewWebService(net, &GuestBackend{G: g}, DefaultWebParams(64), sim.NewRNG(1))
	g.Crash("attack")
	if ws.HandleRequest(client, nil) {
		t.Fatal("dead backend accepted a request")
	}
	if ws.Failed != 1 {
		t.Fatalf("failed = %d", ws.Failed)
	}
	k.Run()
}

func TestNativeBackendWorkersDieIndividually(t *testing.T) {
	k := sim.NewKernel()
	h := hostos.MustNew(k, hostos.Seattle(), nil)
	b := NewNativeBackend(h, "native", "10.0.0.9", 500, 2)
	if !b.Alive() {
		t.Fatal("fresh backend dead")
	}
	h.KillUID(500)
	if b.Alive() {
		t.Fatal("backend alive with all workers dead")
	}
	if b.ExecCPU(1, nil) || b.ReadDisk(1, nil) {
		t.Fatal("dead backend accepted work")
	}
}

func TestHoneypotAttackCrashesOnlyTheVictim(t *testing.T) {
	k := sim.NewKernel()
	net := simnet.New(k, 10*sim.Microsecond)
	h := hostos.MustNew(k, hostos.Seattle(), nil)
	nic := net.MustAttach("seattle", 100)
	nic.AddIP("10.0.0.5")
	nic.AddIP("10.0.0.6")
	web := bootGuest(t, k, h, "web", 1000, "10.0.0.5")
	victim := bootGuest(t, k, h, "honeypot", 2000, "10.0.0.6")
	hp := NewHoneypot(net, victim)
	crashed := false
	if !hp.HandleAttack(func() { crashed = true }) {
		t.Fatal("attack rejected")
	}
	k.Run()
	if !crashed || victim.Alive() {
		t.Fatal("victim survived the exploit")
	}
	if !web.Alive() {
		t.Fatal("co-located web guest died — isolation violated")
	}
	if hp.Attacks != 1 || hp.Crashes != 1 {
		t.Fatalf("attacks=%d crashes=%d", hp.Attacks, hp.Crashes)
	}
	// A second attack finds the port closed.
	if hp.HandleAttack(nil) {
		t.Fatal("dead victim accepted an attack")
	}
}

func TestCompJobConsumesCPU(t *testing.T) {
	k := sim.NewKernel()
	h := hostos.MustNew(k, hostos.Seattle(), nil)
	g := bootGuest(t, k, h, "comp", 3000, "10.0.0.7")
	job := StartComp(g, 4)
	if job.Spinners != 4 {
		t.Fatalf("spinners = %d", job.Spinners)
	}
	base := h.CPUCyclesFor(3000)
	k.RunFor(5 * sim.Second)
	consumed := h.CPUCyclesFor(3000) - base
	want := 5 * float64(h.Spec.Clock)
	if math.Abs(consumed-want) > want*0.01 {
		t.Fatalf("comp consumed %v cycles in 5s, want ≈%v (whole CPU)", consumed, want)
	}
}

func TestLogJobKeepsWritingUntilStopped(t *testing.T) {
	k := sim.NewKernel()
	h := hostos.MustNew(k, hostos.Seattle(), nil)
	g := bootGuest(t, k, h, "log", 3000, "10.0.0.8")
	job := StartLog(g, 32<<10, 2e6)
	k.RunFor(2 * sim.Second)
	if job.Writes < 100 {
		t.Fatalf("writes = %d in 2s, loop too slow", job.Writes)
	}
	job.Stop()
	k.RunFor(sim.Second)
	before := job.Writes
	k.RunFor(2 * sim.Second)
	if job.Writes != before {
		t.Fatal("log loop kept writing after Stop")
	}
}

func TestLogJobDiesWithGuest(t *testing.T) {
	k := sim.NewKernel()
	h := hostos.MustNew(k, hostos.Seattle(), nil)
	g := bootGuest(t, k, h, "log", 3000, "10.0.0.8")
	job := StartLog(g, 32<<10, 2e6)
	k.RunFor(sim.Second)
	g.Crash("fault")
	count := job.Writes
	k.RunFor(2 * sim.Second)
	if job.Writes > count {
		t.Fatal("log loop survived guest crash")
	}
}
