// Repository-level benchmarks: one testing.B benchmark per table and
// figure of the paper's evaluation, each regenerating the experiment via
// internal/exp and reporting the reproduced quantities as custom metrics
// (paper-vs-measured lives in EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"testing"

	"repro/internal/exp"
)

// BenchmarkTable2Bootstrap regenerates Table 2 (service bootstrapping
// time, 4 services × 2 hosts) and reports the headline boot times in
// virtual seconds.
func BenchmarkTable2Bootstrap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunTable2()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.MeasuredSec, row.Label+"/"+row.Host+"/vsec")
		}
	}
}

// BenchmarkTable3ConfigFile regenerates Table 3 (the service
// configuration file for <3, M>).
func BenchmarkTable3ConfigFile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunTable3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Service.TotalCapacity()), "capacity")
	}
}

// BenchmarkTable4Syscall regenerates Table 4 (syscall slow-down in clock
// cycles) and reports the mean UML/host ratio.
func BenchmarkTable4Syscall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunTable4()
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, row := range r.Rows {
			sum += row.Slowdown
		}
		b.ReportMetric(sum/float64(len(r.Rows)), "mean-slowdown-x")
	}
}

// BenchmarkFig4LoadBalancing regenerates Figure 4 (per-node response
// times under weighted round-robin) and reports the request split and
// the worst per-node response-time divergence.
func BenchmarkFig4LoadBalancing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig4()
		if err != nil {
			b.Fatal(err)
		}
		var worst float64 = 1
		for _, p := range r.Points {
			split := float64(p.SeattleServed) / float64(p.TacomaServed)
			b.ReportMetric(split, "split-at-"+itoa(p.DatasetMB)+"MB")
			hi, lo := p.SeattleRespMs, p.TacomaRespMs
			if lo > hi {
				hi, lo = lo, hi
			}
			if hi/lo > worst {
				worst = hi / lo
			}
		}
		b.ReportMetric(worst, "worst-node-divergence")
	}
}

// BenchmarkFig5CPUIsolation regenerates Figure 5 (CPU shares under the
// unmodified and proportional schedulers) and reports the maximum
// deviation from the 1/3 allocation under each.
func BenchmarkFig5CPUIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Unmodified.MaxDeviation, "unmodified-deviation")
		b.ReportMetric(r.Proportional.MaxDeviation, "proportional-deviation")
	}
}

// BenchmarkFig6Slowdown regenerates Figure 6 (application-level
// slow-down across the three deployments) and reports the slow-down
// factor range.
func BenchmarkFig6Slowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunFig6()
		if err != nil {
			b.Fatal(err)
		}
		minSD, maxSD := 1e9, 0.0
		for _, d := range r.Datasets {
			sd := r.SlowdownAt(d)
			if sd < minSD {
				minSD = sd
			}
			if sd > maxSD {
				maxSD = sd
			}
		}
		b.ReportMetric(minSD, "min-slowdown-x")
		b.ReportMetric(maxSD, "max-slowdown-x")
	}
}

// BenchmarkDownloadLinearity regenerates the §4.3 in-text measurement
// (download time vs image size) and reports the fit.
func BenchmarkDownloadLinearity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunDownload()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Slope, "sec-per-MB")
		b.ReportMetric(r.R2, "r-squared")
	}
}

// BenchmarkAttackIsolation regenerates the §5 attack experiment
// (Figure 3's setting) and reports the web service's response-time ratio
// under attack.
func BenchmarkAttackIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAttack()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Crashes), "honeypot-crashes")
		b.ReportMetric(r.UnderAttackRespMs/r.BaselineRespMs, "web-latency-ratio")
	}
}

// --- Ablation benches: design choices DESIGN.md calls out ----------------

// BenchmarkAblationInflation measures the victim-latency cost of dropping
// the §3.2 slow-down inflation on a saturated host.
func BenchmarkAblationInflation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAblationInflation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.LatencyInflatedMs, "victim-ms-1.5x")
		b.ReportMetric(r.LatencyFlatMs, "victim-ms-1.0x")
	}
}

// BenchmarkAblationStrategy compares Spread and Pack placements under
// whole-host failures.
func BenchmarkAblationStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAblationStrategy()
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range r.Outcomes {
			b.ReportMetric(float64(o.Completed), o.Strategy+"-"+o.FailedHost+"-served")
		}
	}
}

// BenchmarkAblationShaper compares the work-conserving and hard-cap
// shaper semantics.
func BenchmarkAblationShaper(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAblationShaper()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.LoneShareSec, "lone-share-vsec")
		b.ReportMetric(r.LoneCapSec, "lone-cap-vsec")
	}
}

// BenchmarkAblationDDoS reproduces the paper's §3.5 concession: switch
// inundation degrades co-hosted virtual service nodes.
func BenchmarkAblationDDoS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.RunAblationDDoS()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FloodMs/r.QuietMs, "cohost-degradation-x")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
