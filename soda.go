// Package repro is a from-scratch Go reproduction of "SODA: a
// Service-On-Demand Architecture for Application Service Hosting Utility
// Platforms" (Jiang & Xu, HPDC 2003).
//
// The root package is a facade over the internal implementation: it
// re-exports the pieces a downstream user needs to stand up a Hosting
// Utility Platform, request on-demand service creation through the SODA
// Agent, and drive the paper's experiments.
//
//	tb := repro.MustNewTestbed(repro.TestbedConfig{Seed: 1})
//	tb.Agent.RegisterASP("bio-institute", "genome-key")
//	img := repro.WebContentImage("genome-match", 64)
//	tb.Publish(img)
//	svc, err := tb.CreateService("genome-key", repro.ServiceSpec{ ... })
//
// See the examples/ directory for complete programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology.
package repro

import (
	"repro/internal/appsvc"
	"repro/internal/hostos"
	"repro/internal/hup"
	"repro/internal/image"
	"repro/internal/realswitch"
	"repro/internal/simnet"
	"repro/internal/soda"
	"repro/internal/svcswitch"
	"repro/internal/uml"
	"repro/internal/workload"
)

// Core SODA types (§2–§4 of the paper).
type (
	// TestbedConfig parameterises a HUP testbed.
	TestbedConfig = hup.Config
	// Testbed is a running HUP with its SODA control plane.
	Testbed = hup.Testbed
	// ServiceSpec is an ASP's service creation request.
	ServiceSpec = soda.ServiceSpec
	// Service is a hosted application service.
	Service = soda.Service
	// MachineConfig is the paper's M tuple (Table 1).
	MachineConfig = soda.MachineConfig
	// Requirement is the paper's <n, M>.
	Requirement = soda.Requirement
	// NodeInfo describes one created virtual service node.
	NodeInfo = soda.NodeInfo
	// HostSpec describes a HUP host's hardware.
	HostSpec = hostos.Spec
	// Image is a packaged application service.
	Image = image.Image
	// IP is an address on the testbed LAN.
	IP = simnet.IP
	// Guest is a booted virtual service node's guest OS.
	Guest = uml.Guest
	// SwitchPolicy is the replaceable request switching policy (§3.4).
	SwitchPolicy = svcswitch.Policy
	// BackendEntry is one row of a service configuration file (Table 3).
	BackendEntry = svcswitch.BackendEntry
	// ConfigFile is a service configuration file.
	ConfigFile = svcswitch.ConfigFile
	// Generator is a siege-style client load generator.
	Generator = workload.Generator
	// WebParams is the web content service's cost model.
	WebParams = appsvc.WebParams
	// WebDeployment instruments a web content service across its nodes.
	WebDeployment = hup.WebDeployment
	// HoneypotDeployment wires the paper's honeypot victim service.
	HoneypotDeployment = hup.HoneypotDeployment
	// LiveProxy is the real-TCP twin of the service switch.
	LiveProxy = realswitch.Proxy
	// TransportConfig tunes the live proxy's shared backend transport.
	TransportConfig = realswitch.TransportConfig
)

// The paper's conservative slow-down inflation (§3.2 footnote 2).
const SlowdownFactor = soda.SlowdownFactor

// Well-known testbed addresses.
const (
	MasterIP = hup.MasterIP
	AgentIP  = hup.AgentIP
	RepoIP   = hup.RepoIP
)

// NewTestbed builds a HUP testbed; the zero config reproduces the
// paper's seattle+tacoma platform.
func NewTestbed(cfg TestbedConfig) (*Testbed, error) { return hup.New(cfg) }

// MustNewTestbed is NewTestbed, panicking on error.
func MustNewTestbed(cfg TestbedConfig) *Testbed { return hup.MustNew(cfg) }

// DefaultM returns Table 1's example machine configuration.
func DefaultM() MachineConfig { return soda.DefaultM() }

// Seattle and Tacoma return the paper's two testbed host specs.
func Seattle() HostSpec { return hostos.Seattle() }

// Tacoma returns the paper's second testbed host spec.
func Tacoma() HostSpec { return hostos.Tacoma() }

// WebContentImage builds the paper's S_I web content service image with
// the given dataset size.
func WebContentImage(name string, datasetMB int) *Image { return hup.WebContentImage(name, datasetMB) }

// HoneypotImage builds the paper's S_II vulnerable victim image.
func HoneypotImage(name string) *Image { return hup.HoneypotImage(name) }

// NewWebDeployment prepares a web content deployment.
func NewWebDeployment(tb *Testbed, params WebParams) *WebDeployment {
	return hup.NewWebDeployment(tb, params)
}

// NewHoneypotDeployment prepares a honeypot deployment.
func NewHoneypotDeployment(tb *Testbed) *HoneypotDeployment { return hup.NewHoneypotDeployment(tb) }

// DefaultWebParams returns the calibrated web service cost model.
func DefaultWebParams(datasetMB int) WebParams { return appsvc.DefaultWebParams(datasetMB) }

// Switching policies (§3.4): the default and the ASP-replaceable ones.
func NewWeightedRoundRobin() SwitchPolicy { return svcswitch.NewWeightedRoundRobin() }

// NewRoundRobin returns a capacity-blind round-robin policy.
func NewRoundRobin() SwitchPolicy { return svcswitch.NewRoundRobin() }

// NewLeastActive returns the least-active-weighted policy.
func NewLeastActive() SwitchPolicy { return svcswitch.NewLeastActive() }

// NewLiveProxy returns the real-TCP service switch for a configuration,
// with the tuned default transport settings.
func NewLiveProxy(cfg *ConfigFile) *LiveProxy { return realswitch.New(cfg) }

// NewLiveProxyWithTransport is NewLiveProxy with explicit transport
// settings (connection-pool size, dial and response-header timeouts).
func NewLiveProxyWithTransport(cfg *ConfigFile, tc TransportConfig) *LiveProxy {
	return realswitch.NewWithTransport(cfg, tc)
}

// DefaultTransportConfig returns the live proxy's tuned transport knobs.
func DefaultTransportConfig() TransportConfig { return realswitch.DefaultTransportConfig() }

// NewConfigFile returns an empty service configuration file.
func NewConfigFile(serviceName string) *ConfigFile { return svcswitch.NewConfigFile(serviceName) }

// ParseConfig reads a service configuration file in Table 3's format.
func ParseConfig(s string) (*ConfigFile, error) { return svcswitch.ParseConfig(s) }
