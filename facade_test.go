package repro_test

import (
	"strings"
	"testing"

	"repro"
)

// The facade test drives the whole public API surface end to end —
// what a downstream user's first program exercises.

func TestFacadeEndToEnd(t *testing.T) {
	tb := repro.MustNewTestbed(repro.TestbedConfig{Seed: 99})
	if err := tb.Agent.RegisterASP("asp", "key"); err != nil {
		t.Fatal(err)
	}
	img := repro.WebContentImage("app-1.0", 8)
	if err := tb.Publish(img); err != nil {
		t.Fatal(err)
	}
	m := repro.DefaultM()
	m.DiskMB = 2048
	wd := repro.NewWebDeployment(tb, repro.DefaultWebParams(64))
	svc, err := tb.CreateService("key", repro.ServiceSpec{
		Name:         "app",
		ImageName:    img.Name,
		Repository:   repro.RepoIP,
		Requirement:  repro.Requirement{N: 3, M: m},
		GuestProfile: img.SystemServices,
		Behavior:     wd.Behavior(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if svc.TotalCapacity() != 3 || len(svc.Nodes) != 2 {
		t.Fatalf("capacity=%d nodes=%d", svc.TotalCapacity(), len(svc.Nodes))
	}
	// Config round-trips through the public parser.
	parsed, err := repro.ParseConfig(svc.Config.Render())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.TotalCapacity() != 3 {
		t.Fatal("parsed capacity wrong")
	}
	// Policy swap through the facade.
	svc.Switch.SetPolicy(repro.NewLeastActive())
	if svc.Switch.Policy().Name() != "least-active" {
		t.Fatal("policy swap failed")
	}
	// Resize and teardown.
	if _, err := tb.Resize("key", "app", 4); err != nil {
		t.Fatal(err)
	}
	if err := tb.Teardown("key", "app"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeConstants(t *testing.T) {
	if repro.SlowdownFactor != 1.5 {
		t.Fatal("facade slow-down factor drifted")
	}
	if repro.Seattle().Name != "seattle" || repro.Tacoma().Name != "tacoma" {
		t.Fatal("testbed host specs wrong")
	}
	m := repro.DefaultM()
	if m.CPUMHz != 512 {
		t.Fatal("DefaultM drifted from Table 1")
	}
}

func TestFacadeImages(t *testing.T) {
	if !strings.Contains(repro.HoneypotImage("h").ServiceCommand, "ghttpd") {
		t.Fatal("honeypot image wrong")
	}
	if repro.WebContentImage("w", 0).SizeMB() != 29 {
		t.Fatal("web image base size drifted from S_I's 29.3MB")
	}
}

func TestFacadeLiveProxy(t *testing.T) {
	cfg := repro.NewConfigFile("svc")
	if err := cfg.SetEntries([]repro.BackendEntry{{IP: "127.0.0.1", Port: 1, Capacity: 1}}); err != nil {
		t.Fatal(err)
	}
	if repro.NewLiveProxy(cfg) == nil {
		t.Fatal("nil proxy")
	}
	if repro.NewWeightedRoundRobin().Name() != "weighted-round-robin" ||
		repro.NewRoundRobin().Name() != "round-robin" {
		t.Fatal("policy constructors wrong")
	}
}
